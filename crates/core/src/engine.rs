//! The fast similarity engine: exact CST-BBS distances at a fraction of
//! the naive cost.
//!
//! [`crate::similarity::model_distance`] recomputes a full Levenshtein
//! (`O(p·q)`) inside *every* DTW cell, so one comparison costs
//! `O(n·m·p·q)` and a repo scan multiplies that by the repository size.
//! This module keeps the result **bitwise identical** while doing far
//! less work:
//!
//! * **Interning** ([`SimilarityEngine::prepare`]): each step's
//!   normalized instruction sequence is interned into a pool shared by
//!   every model the engine has seen, so the expensive `D_IS` Levenshtein
//!   is computed once per *distinct* sequence pair and looked up
//!   thereafter. Basic blocks repeat heavily inside loops and across
//!   mutated variants of the same PoC, so distinct pairs ≪ DTW cells.
//! * **Early abandoning** ([`SimilarityEngine::distance_bounded`]):
//!   accumulated DTW row minima are monotonically non-decreasing, so as
//!   soon as every cell of the active row exceeds a caller-supplied
//!   cutoff (the best distance seen so far in a repo scan) the
//!   comparison is abandoned — the remaining cells can only make it
//!   worse.
//! * **Cascading lower bounds** ([`lb_length`], [`lb_csp`]): cheap,
//!   provably admissible lower bounds on the true distance let a repo
//!   scan skip an entry without touching a single Levenshtein. Both drop
//!   a non-negative distance component, so they can never exceed the
//!   true distance (see each function's admissibility argument).
//!
//! Exactness is load-bearing: the detector's scores must match the naive
//! reference (`dtw(a, b, cst_distance)`) *bitwise*, which the engine
//! guarantees by performing the identical floating-point operations in
//! the identical order for every cell it does compute, and by only ever
//! skipping work whose result provably cannot affect the outcome. The
//! property tests in `tests/properties.rs` and the PoC cross-matrix test
//! in `tests/engine_exactness.rs` assert this.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

use sca_isa::NormInst;

use crate::cst::CstBbs;
use crate::similarity::levenshtein;

/// Work counters the engine accumulates across comparisons.
///
/// Monotonic; read them with [`SimilarityEngine::stats`] and diff across
/// calls to attribute work to one scan. The detector bridges these into
/// the `sca-telemetry` counters `dtw.cells`, `dtw.cells_pruned`,
/// `dtw.lb_skips`, `simcache.hits`, and `simcache.misses`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// DTW cells actually computed (per-step distance evaluated).
    pub cells: u64,
    /// DTW cells skipped by early abandoning (the rest of an abandoned
    /// comparison) or by a lower-bound skip (the whole comparison).
    pub cells_pruned: u64,
    /// Comparisons skipped outright by a cheap lower bound.
    pub lb_skips: u64,
    /// `D_IS` lookups served from the interned-pair cache (including the
    /// identical-sequence fast path).
    pub cache_hits: u64,
    /// `D_IS` values computed (one full Levenshtein each) and cached.
    pub cache_misses: u64,
}

impl EngineStats {
    /// `self - earlier`, counter-wise — the work done since `earlier`.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            cells: self.cells - earlier.cells,
            cells_pruned: self.cells_pruned - earlier.cells_pruned,
            lb_skips: self.lb_skips - earlier.lb_skips,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
        }
    }
}

/// A CST-BBS readied for fast comparison: interned sequence ids plus the
/// per-step values and sorted aggregates the lower bounds need.
///
/// Prepared models are only meaningful with the engine that produced
/// them (ids index that engine's pool).
#[derive(Debug, Clone)]
pub struct PreparedModel {
    /// Interned id of each step's normalized instruction sequence.
    ids: Vec<u32>,
    /// Each step's cache-change magnitude `P` (precomputed once).
    changes: Vec<f64>,
    /// Each step's instruction-sequence length.
    lens: Vec<u32>,
    /// `lens`, sorted — binary-searched by the length-difference bound.
    sorted_lens: Vec<u32>,
    /// `changes`, sorted — binary-searched by the CSP envelope term.
    sorted_changes: Vec<f64>,
    /// Prefix sums of `sorted_lens` (as `f64`); `prefix_len[i]` is the
    /// sum of the `i` smallest lengths. Used by [`lb_interval`] to price
    /// a whole scan side against a value interval in `O(log n)`.
    prefix_len: Vec<f64>,
    /// Prefix sums of `1/len` over `sorted_lens` (`0.0` for empty
    /// blocks, which never enter the out-of-interval terms).
    prefix_inv_len: Vec<f64>,
    /// Prefix sums of `sorted_changes`.
    prefix_change: Vec<f64>,
    /// Value-indexed cumulative counts over `sorted_lens`
    /// (`len_cnt_le[v]` = how many steps have length `<= v`), so the
    /// per-entry envelope pass prices length sides with two array loads
    /// instead of two binary searches. Empty when the model has no steps
    /// or a step is implausibly long; the searches remain as fallback
    /// and produce identical indices.
    len_cnt_le: Vec<u32>,
}

/// Step lengths at or above this skip the count table (a table that
/// large would cost more than the searches it replaces).
const LEN_LUT_CAP: usize = 4096;

/// The value-indexed cumulative count table over a sorted length list,
/// or empty when the largest value is too big to table.
fn cumulative_len_counts(sorted: &[u32]) -> Vec<u32> {
    let Some(&max) = sorted.last() else {
        return Vec::new();
    };
    if max as usize >= LEN_LUT_CAP {
        return Vec::new();
    }
    let mut cnt = vec![0u32; max as usize + 1];
    for &v in sorted {
        cnt[v as usize] += 1;
    }
    let mut run = 0u32;
    for c in &mut cnt {
        run += *c;
        *c = run;
    }
    cnt
}

impl PreparedModel {
    /// Number of steps in the underlying model.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Number of steps with sequence length `<= v` — identical to
    /// `sorted_lens.partition_point(|&q| q <= v)`, as one array load
    /// when the count table covers the model.
    #[inline]
    fn lens_at_most(&self, v: u32) -> usize {
        match self.len_cnt_le.len() {
            0 => self.sorted_lens.partition_point(|&q| q <= v),
            cap => self.len_cnt_le[(v as usize).min(cap - 1)] as usize,
        }
    }

    /// Number of steps with sequence length `< v` — identical to
    /// `sorted_lens.partition_point(|&q| q < v)`.
    #[inline]
    fn lens_below(&self, v: u32) -> usize {
        match v {
            0 => 0,
            v => self.lens_at_most(v - 1),
        }
    }

    /// Whether the underlying model has no steps.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// A deadline-aware comparison ran out of time before completing.
///
/// Raised by [`SimilarityEngine::distance_bounded_until`] (and the
/// detector's deadline-propagating scans built on it) when the supplied
/// deadline passes mid-comparison. The engine's caches and counters stay
/// consistent; only the in-flight comparison is abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "similarity scan deadline exceeded")
    }
}

impl Error for DeadlineExceeded {}

/// The outcome of a cutoff-bounded comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bounded {
    /// The comparison ran to completion; this is the exact distance,
    /// bitwise identical to the naive reference.
    Exact(f64),
    /// The comparison was abandoned: the true distance is **at least**
    /// this value, which exceeds the cutoff.
    AtLeast(f64),
}

impl Bounded {
    /// The exact distance, if the comparison completed.
    pub fn exact(self) -> Option<f64> {
        match self {
            Bounded::Exact(d) => Some(d),
            Bounded::AtLeast(_) => None,
        }
    }

    /// The distance if exact, else the lower bound — always a valid
    /// lower bound on the true distance.
    pub fn lower_bound(self) -> f64 {
        match self {
            Bounded::Exact(d) | Bounded::AtLeast(d) => d,
        }
    }
}

/// The reusable similarity engine: an instruction-sequence intern pool,
/// a `D_IS` cache keyed by distinct sequence pairs, and work counters.
///
/// One engine serves any number of comparisons; the pool and cache
/// persist across them, which is where the big wins come from when many
/// targets are scanned against the same repository (mutated variants
/// share most of their blocks). Memory grows with the number of
/// *distinct* sequences and pairs actually compared — both tiny for
/// CST-BBS workloads (blocks are short and heavily shared).
///
/// ```
/// use scaguard::{dtw, cst_distance, CstBbs, SimilarityEngine};
/// let mut engine = SimilarityEngine::new();
/// let (a, b) = (CstBbs::default(), CstBbs::default());
/// let (pa, pb) = (engine.prepare(&a), engine.prepare(&b));
/// assert_eq!(engine.distance(&pa, &pb), dtw(a.steps(), b.steps(), cst_distance));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimilarityEngine {
    /// Sequence -> interned id.
    ids: HashMap<Vec<NormInst>, u32>,
    /// Interned id -> sequence.
    seqs: Vec<Vec<NormInst>>,
    /// Dense `D_IS` cache for id pairs below [`DENSE_CAP`] (the common
    /// case — pools stay tiny), `NaN` = not yet computed. A square
    /// matrix of dimension `dense_n`, grown geometrically with the pool
    /// so small engines stay cheap. One array load per DTW cell instead
    /// of a hash lookup.
    dense: Vec<f64>,
    /// Current dimension of `dense` (`dense.len() == dense_n²`).
    dense_n: usize,
    /// `D_IS` spill for unordered pairs with an id at or above
    /// [`DENSE_CAP`].
    dis: HashMap<(u32, u32), f64>,
    stats: EngineStats,
}

/// Ids below this use the dense `D_IS` matrix (at most `DENSE_CAP² × 8`
/// bytes = 8 MiB once that many sequences are interned); rarer ids spill
/// to the hash map.
const DENSE_CAP: usize = 1024;

impl SimilarityEngine {
    /// An empty engine.
    pub fn new() -> SimilarityEngine {
        SimilarityEngine::default()
    }

    /// The cumulative work counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of distinct instruction sequences interned so far.
    pub fn pool_len(&self) -> usize {
        self.seqs.len()
    }

    fn intern(&mut self, seq: &[NormInst]) -> u32 {
        if let Some(&id) = self.ids.get(seq) {
            return id;
        }
        let id = u32::try_from(self.seqs.len()).expect("intern pool overflow");
        self.ids.insert(seq.to_vec(), id);
        self.seqs.push(seq.to_vec());
        id
    }

    /// Intern a model's sequences and precompute what comparisons need.
    pub fn prepare(&mut self, model: &CstBbs) -> PreparedModel {
        let steps = model.steps();
        let ids: Vec<u32> = steps.iter().map(|s| self.intern(&s.norm_insts)).collect();
        let changes: Vec<f64> = steps.iter().map(|s| s.cst.change()).collect();
        let lens: Vec<u32> = steps
            .iter()
            .map(|s| u32::try_from(s.norm_insts.len()).expect("block too long"))
            .collect();
        let mut sorted_lens = lens.clone();
        sorted_lens.sort_unstable();
        let mut sorted_changes = changes.clone();
        sorted_changes.sort_unstable_by(f64::total_cmp);
        let mut prefix_len = Vec::with_capacity(sorted_lens.len() + 1);
        let mut prefix_inv_len = Vec::with_capacity(sorted_lens.len() + 1);
        let (mut sum, mut inv_sum) = (0.0f64, 0.0f64);
        prefix_len.push(0.0);
        prefix_inv_len.push(0.0);
        for &l in &sorted_lens {
            sum += f64::from(l);
            inv_sum += if l == 0 { 0.0 } else { 1.0 / f64::from(l) };
            prefix_len.push(sum);
            prefix_inv_len.push(inv_sum);
        }
        let mut prefix_change = Vec::with_capacity(sorted_changes.len() + 1);
        let mut csum = 0.0f64;
        prefix_change.push(0.0);
        for &c in &sorted_changes {
            csum += c;
            prefix_change.push(csum);
        }
        let len_cnt_le = cumulative_len_counts(&sorted_lens);
        PreparedModel {
            ids,
            changes,
            lens,
            sorted_lens,
            sorted_changes,
            prefix_len,
            prefix_inv_len,
            prefix_change,
            len_cnt_le,
        }
    }

    /// `D_IS` between two interned sequences: computed once per distinct
    /// pair, served from the cache thereafter. Identical sequences share
    /// an id and short-circuit to 0 without touching the cache.
    #[inline]
    fn instruction_distance(&mut self, ia: u32, ib: u32) -> f64 {
        if ia == ib {
            self.stats.cache_hits += 1;
            return 0.0;
        }
        let (la, lb) = (ia as usize, ib as usize);
        if la < DENSE_CAP && lb < DENSE_CAP {
            let need = la.max(lb) + 1;
            if need > self.dense_n {
                self.grow_dense(need);
            }
            let n = self.dense_n;
            let d = self.dense[la * n + lb];
            if !d.is_nan() {
                self.stats.cache_hits += 1;
                return d;
            }
            let d = self.compute_dis(ia, ib);
            self.dense[la * n + lb] = d;
            self.dense[lb * n + la] = d;
            return d;
        }
        let key = (ia.min(ib), ia.max(ib));
        if let Some(&d) = self.dis.get(&key) {
            self.stats.cache_hits += 1;
            return d;
        }
        let d = self.compute_dis(ia, ib);
        self.dis.insert(key, d);
        d
    }

    /// Grow the dense matrix to at least `need × need`, remapping the
    /// already-cached entries to the new row stride. Geometric growth
    /// keeps the amortized cost per interned sequence constant.
    fn grow_dense(&mut self, need: usize) {
        let new_n = need.next_power_of_two().clamp(64, DENSE_CAP);
        let mut grown = vec![f64::NAN; new_n * new_n];
        for r in 0..self.dense_n {
            let old_row = &self.dense[r * self.dense_n..(r + 1) * self.dense_n];
            grown[r * new_n..r * new_n + self.dense_n].copy_from_slice(old_row);
        }
        self.dense = grown;
        self.dense_n = new_n;
    }

    /// One full Levenshtein — the cache-miss path.
    fn compute_dis(&mut self, ia: u32, ib: u32) -> f64 {
        self.stats.cache_misses += 1;
        let (a, b) = (&self.seqs[ia as usize], &self.seqs[ib as usize]);
        let denom = a.len().max(b.len());
        // denom > 0: two empty sequences intern to the same id.
        levenshtein(a, b) as f64 / denom as f64
    }

    /// The exact DTW distance between two prepared models — bitwise
    /// identical to `dtw(a.steps(), b.steps(), cst_distance)`.
    pub fn distance(&mut self, a: &PreparedModel, b: &PreparedModel) -> f64 {
        match self.distance_bounded(a, b, f64::INFINITY) {
            Bounded::Exact(d) => d,
            Bounded::AtLeast(_) => unreachable!("nothing exceeds an infinite cutoff"),
        }
    }

    /// DTW with early abandoning: returns the exact distance, or
    /// [`Bounded::AtLeast`] as soon as every cell of the active row
    /// exceeds `cutoff`.
    ///
    /// Sound because accumulated row minima never decrease: every cell of
    /// row `i` is some cell of row `i-1` (or an earlier cell of row `i`)
    /// plus a non-negative per-step cost, and IEEE addition of
    /// non-negative values is monotone — so once a whole row exceeds the
    /// cutoff, the final distance (which extends some cell of that row)
    /// must too. A comparison whose true distance *equals* the cutoff is
    /// never abandoned, preserving the naive scan's tie behavior.
    pub fn distance_bounded(
        &mut self,
        a: &PreparedModel,
        b: &PreparedModel,
        cutoff: f64,
    ) -> Bounded {
        match self.distance_bounded_until(a, b, cutoff, None) {
            Ok(outcome) => outcome,
            Err(DeadlineExceeded) => unreachable!("no deadline was given"),
        }
    }

    /// [`SimilarityEngine::distance_bounded`] with an optional wall-clock
    /// deadline — the hook resident services use to cap per-request
    /// similarity work. The deadline is checked once per DTW row (rows
    /// are tens of cells for CST-BBS workloads, so the granularity is
    /// microseconds); when it passes, the comparison is abandoned with
    /// [`DeadlineExceeded`] and the already-computed cells are accounted
    /// as pruned. A `None` deadline is exactly [`SimilarityEngine::distance_bounded`].
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] when `deadline` passes before the
    /// comparison completes or is abandoned by the cutoff.
    pub fn distance_bounded_until(
        &mut self,
        a: &PreparedModel,
        b: &PreparedModel,
        cutoff: f64,
        deadline: Option<Instant>,
    ) -> Result<Bounded, DeadlineExceeded> {
        let (n, m) = (a.len(), b.len());
        if n == 0 && m == 0 {
            return Ok(Bounded::Exact(0.0));
        }
        if n == 0 || m == 0 {
            // Same convention as the naive `dtw`: every unmatched step
            // costs the per-step maximum of 1.
            return Ok(Bounded::Exact((n + m) as f64));
        }
        let mut prev = vec![f64::INFINITY; m + 1];
        let mut cur = vec![f64::INFINITY; m + 1];
        prev[0] = 0.0;
        for i in 0..n {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    let computed = (i * m) as u64;
                    self.stats.cells += computed;
                    self.stats.cells_pruned += (n * m) as u64 - computed;
                    return Err(DeadlineExceeded);
                }
            }
            cur[0] = f64::INFINITY;
            let mut row_min = f64::INFINITY;
            let ida = a.ids[i];
            let ca = a.changes[i];
            for j in 0..m {
                // Identical arithmetic, identical order to `cst_distance`:
                // `(D_IS + D_CSP) / 2` per cell.
                let dis = self.instruction_distance(ida, b.ids[j]);
                let csp = (ca - b.changes[j]).abs();
                let d = (dis + csp) / 2.0;
                let best = prev[j].min(prev[j + 1]).min(cur[j]);
                let cell = d + best;
                cur[j + 1] = cell;
                row_min = row_min.min(cell);
            }
            if row_min > cutoff {
                let computed = ((i + 1) * m) as u64;
                self.stats.cells += computed;
                self.stats.cells_pruned += (n * m) as u64 - computed;
                return Ok(Bounded::AtLeast(row_min));
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        self.stats.cells += (n * m) as u64;
        Ok(Bounded::Exact(prev[m]))
    }

    /// Record a lower-bound skip of an `n × m` comparison in the stats.
    pub(crate) fn note_lb_skip(&mut self, a: &PreparedModel, b: &PreparedModel) {
        self.stats.lb_skips += 1;
        self.stats.cells_pruned += (a.len() * b.len()) as u64;
    }
}

/// A resumable exact DTW against one fixed repository entry, for targets
/// that grow between scoring rounds (streaming detection re-scores an
/// enrolled entry against every prefix of the model under construction).
///
/// The DP is row-major with the *target* as rows, so when a new target
/// extends the previously scored one step-for-step, only the added rows
/// are computed — the cached final DP row is resumed. Per-cell arithmetic
/// and evaluation order replicate [`SimilarityEngine::distance`]'s
/// no-cutoff path exactly; DTW's DP is transpose-symmetric under these
/// per-cell operations (the three predecessor cells map onto each other
/// and `f64::min` over non-negative values is commutative), so the result
/// is **bitwise identical** to `distance()` in either argument order. If
/// the new target does *not* extend the consumed prefix (streamed models
/// are not append-only: a block's CST or the relevant-block set can
/// change as evidence accumulates), the cache resets and the full DP
/// reruns — correctness never depends on append-only growth.
#[derive(Debug, Clone)]
pub struct PrefixDtw {
    /// Interned ids / change magnitudes of the fixed entry (columns).
    eids: Vec<u32>,
    echanges: Vec<f64>,
    /// The target rows consumed so far, kept to validate extension.
    tids: Vec<u32>,
    tchanges: Vec<f64>,
    /// The DP row after consuming `tids.len()` target rows.
    row: Vec<f64>,
    /// Times the cache had to reset because the target did not extend
    /// the consumed prefix.
    rebuilds: u64,
}

impl PrefixDtw {
    /// A fresh resumable comparison against `entry`.
    pub fn new(entry: &PreparedModel) -> PrefixDtw {
        let m = entry.len();
        let mut row = vec![f64::INFINITY; m + 1];
        row[0] = 0.0;
        PrefixDtw {
            eids: entry.ids.clone(),
            echanges: entry.changes.clone(),
            tids: Vec::new(),
            tchanges: Vec::new(),
            row,
            rebuilds: 0,
        }
    }

    /// How often the cache reset because a target failed to extend the
    /// previously consumed prefix.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Whether `target` extends the consumed prefix bitwise (same
    /// interned ids, same change magnitudes) so the cached row can be
    /// resumed.
    fn extends(&self, target: &PreparedModel) -> bool {
        let k = self.tids.len();
        target.len() >= k
            && target.ids[..k] == self.tids[..]
            && target.changes[..k]
                .iter()
                .zip(&self.tchanges)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// The exact DTW distance from `target` to the fixed entry — bitwise
    /// identical to `engine.distance(&target, &entry)` — computing only
    /// the rows `target` adds beyond the last scored prefix when it
    /// extends it.
    pub fn distance_to(&mut self, engine: &mut SimilarityEngine, target: &PreparedModel) -> f64 {
        let (n, m) = (target.len(), self.eids.len());
        if n == 0 || m == 0 {
            // Same conventions as `distance`; the DP cache is untouched.
            return if n == 0 && m == 0 {
                0.0
            } else {
                (n + m) as f64
            };
        }
        if !self.extends(target) {
            self.rebuilds += 1;
            self.tids.clear();
            self.tchanges.clear();
            self.row.fill(f64::INFINITY);
            self.row[0] = 0.0;
        }
        let mut cur = vec![f64::INFINITY; m + 1];
        for i in self.tids.len()..n {
            cur[0] = f64::INFINITY;
            let ida = target.ids[i];
            let ca = target.changes[i];
            for j in 0..m {
                // Identical arithmetic, identical order to
                // `distance_bounded_until`'s no-cutoff path.
                let dis = engine.instruction_distance(ida, self.eids[j]);
                let csp = (ca - self.echanges[j]).abs();
                let d = (dis + csp) / 2.0;
                let best = self.row[j].min(self.row[j + 1]).min(cur[j]);
                cur[j + 1] = d + best;
            }
            engine.stats.cells += m as u64;
            std::mem::swap(&mut self.row, &mut cur);
            self.tids.push(ida);
            self.tchanges.push(ca);
        }
        self.row[m]
    }
}

/// `|p - q| / max(p, q)` — the length-difference floor of a normalized
/// Levenshtein distance (0 when both lengths are 0).
fn len_ratio(p: u32, q: u32) -> f64 {
    let hi = p.max(q);
    if hi == 0 {
        0.0
    } else {
        f64::from(p.abs_diff(q)) / f64::from(hi)
    }
}

/// The smallest `len_ratio(p, q)` over `q` in the sorted slice.
///
/// For `q <= p` the ratio `(p - q)/p` falls as `q` grows; for `q >= p`
/// the ratio `1 - p/q` rises — so the minimum is attained at one of the
/// two sorted neighbors of `p`.
fn min_len_ratio(p: u32, sorted: &[u32]) -> f64 {
    let at = sorted.partition_point(|&q| q < p);
    let mut best = f64::INFINITY;
    if at > 0 {
        best = best.min(len_ratio(p, sorted[at - 1]));
    }
    if at < sorted.len() {
        best = best.min(len_ratio(p, sorted[at]));
    }
    best
}

/// The smallest `|c - d|` over `d` in the sorted slice — attained at a
/// sorted neighbor of `c`.
fn min_change_gap(c: f64, sorted: &[f64]) -> f64 {
    let at = sorted.partition_point(|&d| d < c);
    let mut best = f64::INFINITY;
    if at > 0 {
        best = best.min((c - sorted[at - 1]).abs());
    }
    if at < sorted.len() {
        best = best.min((c - sorted[at]).abs());
    }
    best
}

/// **Length-difference lower bound** on the DTW distance, `O(n log m)`.
///
/// Admissible: a warping path visits every step of each model at least
/// once, and each visit costs `(D_IS + D_CSP)/2 ≥ D_IS/2` (since
/// `D_CSP ≥ 0`), while `D_IS = lev/max(p,q) ≥ |p-q|/max(p,q)` (a
/// Levenshtein distance is at least the length difference). Minimizing
/// that floor over all steps the visit *could* have matched, summing
/// over one model's steps, and taking the larger of the two sides
/// therefore never exceeds the true distance. Exact (not just a bound)
/// when either model is empty, mirroring the naive empty conventions.
pub fn lb_length(a: &PreparedModel, b: &PreparedModel) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == 0 && m == 0 {
            0.0
        } else {
            (n + m) as f64
        };
    }
    let over_a: f64 = a
        .lens
        .iter()
        .map(|&p| min_len_ratio(p, &b.sorted_lens) * 0.5)
        .sum();
    let over_b: f64 = b
        .lens
        .iter()
        .map(|&q| min_len_ratio(q, &a.sorted_lens) * 0.5)
        .sum();
    over_a.max(over_b)
}

/// The envelope term of the CSP-only bound, `O(n log m)`: each step's
/// halved gap to the other model's nearest change magnitude, summed, max
/// of both sides. Admissible by the same per-visit argument as
/// [`lb_length`], with the roles of the two components swapped
/// (`D_IS ≥ 0` dropped instead of `D_CSP ≥ 0`). This is the stage the
/// repo scan's skip cascade uses — unlike the full [`lb_csp`] it costs
/// nothing quadratic when it fails to disqualify an entry.
pub fn lb_csp_envelope(a: &PreparedModel, b: &PreparedModel) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == 0 && m == 0 {
            0.0
        } else {
            (n + m) as f64
        };
    }
    let over_a: f64 = a
        .changes
        .iter()
        .map(|&c| min_change_gap(c, &b.sorted_changes) * 0.5)
        .sum();
    let over_b: f64 = b
        .changes
        .iter()
        .map(|&c| min_change_gap(c, &a.sorted_changes) * 0.5)
        .sum();
    over_a.max(over_b)
}

/// One side of the interval-envelope bound over step lengths: the summed
/// halved length-ratio floor of `a`'s steps against `b`'s *length
/// interval* `[lo, hi]`, priced in `O(log n)` from `a`'s prefix sums.
///
/// For an `a`-step of length `q` matched to any `b`-step of length
/// `l ∈ [lo, hi]`: if `q < lo`, `len_ratio(q, l) = 1 - q/l ≥ 1 - q/lo`;
/// if `q > hi`, `len_ratio(q, l) = 1 - l/q ≥ 1 - hi/q`; otherwise the
/// floor is 0. Summing the closed forms over the sorted prefix sums gives
/// the same value a term-by-term loop would (clamped at 0 against float
/// drift, which only ever weakens the bound).
fn interval_len_sum(a: &PreparedModel, b: &PreparedModel) -> f64 {
    let lo = b.sorted_lens[0];
    let hi = *b.sorted_lens.last().expect("nonempty");
    let n = a.sorted_lens.len();
    let at = a.lens_below(lo);
    let left = if lo > 0 {
        (at as f64 - a.prefix_len[at] / f64::from(lo)).max(0.0)
    } else {
        0.0
    };
    let bt = a.lens_at_most(hi);
    let right =
        ((n - bt) as f64 - f64::from(hi) * (a.prefix_inv_len[n] - a.prefix_inv_len[bt])).max(0.0);
    0.5 * (left + right)
}

/// One side of the interval-envelope bound over change magnitudes: the
/// summed halved gap of `a`'s changes to `b`'s change interval, again in
/// `O(log n)` from prefix sums (`|c - d| ≥ max(lo - c, c - hi, 0)` for
/// any `d ∈ [lo, hi]`).
fn interval_change_sum(a: &PreparedModel, b: &PreparedModel) -> f64 {
    let lo = b.sorted_changes[0];
    let hi = *b.sorted_changes.last().expect("nonempty");
    let n = a.sorted_changes.len();
    let at = a.sorted_changes.partition_point(|&c| c < lo);
    let left = (at as f64 * lo - a.prefix_change[at]).max(0.0);
    let bt = a.sorted_changes.partition_point(|&c| c <= hi);
    let right = ((a.prefix_change[n] - a.prefix_change[bt]) - (n - bt) as f64 * hi).max(0.0);
    0.5 * (left + right)
}

/// **Interval-envelope lower bound** on the DTW distance, `O(log n + log m)`.
///
/// The cheapest member of the cascade: instead of searching each step's
/// nearest neighbor in the other model (`O(n log m)` like [`lb_length`] /
/// [`lb_csp_envelope`]), it prices every step against the other model's
/// *value interval* — `[min, max]` of its step lengths and change
/// magnitudes — using prefix sums over the already-sorted arrays. Per
/// model pair that's four closed-form sums and a handful of binary
/// searches, cheap enough to evaluate for *every* repository entry before
/// any heavier bound runs; the repo scan uses it both as the first skip
/// stage and as the index sort key component.
///
/// Admissible by the same per-visit argument as [`lb_length`]: a warping
/// path visits every step at least once, each visit costs
/// `(D_IS + D_CSP)/2`, and each component's gap to the other model's
/// value interval never exceeds its gap to the actually-matched value.
/// The maximum over the four sides (lengths/changes × both models) is
/// therefore `≤ max(lb_length, lb_csp_envelope) ≤` the true distance.
/// Mirrors the naive empty-model conventions exactly.
pub fn lb_interval(a: &PreparedModel, b: &PreparedModel) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == 0 && m == 0 {
            0.0
        } else {
            (n + m) as f64
        };
    }
    interval_len_sum(a, b)
        .max(interval_len_sum(b, a))
        .max(interval_change_sum(a, b))
        .max(interval_change_sum(b, a))
}

/// **CSP-only lower bound** on the DTW distance, `O(n·m)` with trivial
/// per-cell cost, early-abandoned at `cutoff`.
///
/// Admissible: dropping `D_IS ≥ 0` from every per-step distance leaves
/// `D_CSP/2 = |P_a - P_b|/2 ≤ (D_IS + D_CSP)/2`, and DTW is monotone in
/// its per-cell costs, so the CSP-only DTW never exceeds the true one.
/// When abandoned early the returned row minimum is a lower bound on the
/// CSP-only distance (row minima are non-decreasing), hence still a
/// lower bound on the true distance. As a warm-up it also seeds the
/// envelope term: each step's gap to the other model's nearest change
/// magnitude, which lets most non-matches fail in `O(n log m)` before
/// the quadratic part even starts.
pub fn lb_csp(a: &PreparedModel, b: &PreparedModel, cutoff: f64) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == 0 && m == 0 {
            0.0
        } else {
            (n + m) as f64
        };
    }
    let envelope = lb_csp_envelope(a, b);
    if envelope > cutoff {
        return envelope;
    }
    // Full CSP-only DTW, early-abandoned like the real one.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 0..n {
        cur[0] = f64::INFINITY;
        let mut row_min = f64::INFINITY;
        for j in 0..m {
            let d = (a.changes[i] - b.changes[j]).abs() / 2.0;
            let best = prev[j].min(prev[j + 1]).min(cur[j]);
            let cell = d + best;
            cur[j + 1] = cell;
            row_min = row_min.min(cell);
        }
        if row_min > cutoff {
            return row_min.max(envelope);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m].max(envelope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{Cst, CstStep};
    use crate::similarity::{cst_distance, dtw};
    use sca_cache::CacheState;
    use sca_isa::NormOperand;

    fn step(insts: &[NormInst], ao: f64) -> CstStep {
        CstStep {
            bb_addr: 0,
            norm_insts: insts.to_vec(),
            cst: Cst {
                before: CacheState::full_other(),
                after: CacheState::new(ao, 1.0 - ao),
            },
            first_seen: 0,
        }
    }

    fn ld() -> NormInst {
        NormInst::binary("ld", NormOperand::Reg, NormOperand::Mem)
    }

    fn flush() -> NormInst {
        NormInst::unary("clflush", NormOperand::Mem)
    }

    fn nop() -> NormInst {
        NormInst::nullary("nop")
    }

    fn model(specs: &[(&[NormInst], f64)]) -> CstBbs {
        specs.iter().map(|(insts, ao)| step(insts, *ao)).collect()
    }

    #[test]
    fn engine_matches_naive_exactly() {
        let a = model(&[
            (&[ld(), flush(), ld()], 0.25),
            (&[ld(), flush(), ld()], 0.25),
            (&[nop()], 0.0),
            (&[flush(), flush()], 0.5),
        ]);
        let b = model(&[
            (&[ld(), flush()], 0.3),
            (&[nop(), nop()], 0.1),
            (&[ld(), flush(), ld()], 0.25),
        ]);
        let mut engine = SimilarityEngine::new();
        let (pa, pb) = (engine.prepare(&a), engine.prepare(&b));
        assert_eq!(
            engine.distance(&pa, &pb),
            dtw(a.steps(), b.steps(), cst_distance)
        );
        assert_eq!(engine.distance(&pa, &pa), 0.0);
        // Repeated blocks share interned ids, so the cache hits.
        let stats = engine.stats();
        assert!(stats.cache_hits > 0, "{stats:?}");
        assert!(stats.cache_misses > 0, "{stats:?}");
    }

    #[test]
    fn empty_conventions_match_naive() {
        let empty = CstBbs::default();
        let one = model(&[(&[ld()], 0.5)]);
        let mut engine = SimilarityEngine::new();
        let pe = engine.prepare(&empty);
        let p1 = engine.prepare(&one);
        assert_eq!(engine.distance(&pe, &pe), 0.0);
        assert_eq!(engine.distance(&pe, &p1), 1.0);
        assert_eq!(engine.distance(&p1, &pe), 1.0);
        assert_eq!(lb_length(&pe, &p1), 1.0);
        assert_eq!(lb_interval(&pe, &p1), 1.0);
        assert_eq!(lb_interval(&pe, &pe), 0.0);
        assert_eq!(lb_csp(&pe, &pe, f64::INFINITY), 0.0);
    }

    #[test]
    fn early_abandoning_prunes_and_never_underreports() {
        let a = model(&[(&[ld(); 4], 0.9), (&[ld(); 4], 0.9), (&[ld(); 4], 0.9)]);
        let b = model(&[(&[nop()], 0.0), (&[nop()], 0.0), (&[nop()], 0.0)]);
        let mut engine = SimilarityEngine::new();
        let (pa, pb) = (engine.prepare(&a), engine.prepare(&b));
        let true_d = engine.distance(&pa, &pb);
        assert!(true_d > 0.5);
        let before = engine.stats();
        match engine.distance_bounded(&pa, &pb, 0.5) {
            Bounded::AtLeast(lb) => {
                assert!(lb > 0.5 && lb <= true_d);
            }
            Bounded::Exact(_) => panic!("distance {true_d} should exceed cutoff 0.5"),
        }
        let delta = engine.stats().since(&before);
        assert!(delta.cells_pruned > 0, "{delta:?}");
        assert_eq!(delta.cells + delta.cells_pruned, 9);
    }

    #[test]
    fn cutoff_equal_to_distance_is_not_abandoned() {
        let a = model(&[(&[ld()], 0.4), (&[flush()], 0.2)]);
        let b = model(&[(&[nop()], 0.1)]);
        let mut engine = SimilarityEngine::new();
        let (pa, pb) = (engine.prepare(&a), engine.prepare(&b));
        let d = engine.distance(&pa, &pb);
        assert_eq!(engine.distance_bounded(&pa, &pb, d), Bounded::Exact(d));
    }

    #[test]
    fn lower_bounds_are_admissible() {
        let a = model(&[
            (&[ld(), flush(), ld(), ld()], 0.45),
            (&[nop()], 0.05),
            (&[flush()], 0.3),
        ]);
        let b = model(&[(&[ld()], 0.5), (&[nop(), nop(), nop()], 0.0)]);
        let mut engine = SimilarityEngine::new();
        let (pa, pb) = (engine.prepare(&a), engine.prepare(&b));
        let d = engine.distance(&pa, &pb);
        assert!(lb_interval(&pa, &pb) <= d);
        assert!(lb_interval(&pa, &pb) <= lb_length(&pa, &pb).max(lb_csp_envelope(&pa, &pb)));
        assert!(lb_length(&pa, &pb) <= d);
        assert!(lb_csp(&pa, &pb, f64::INFINITY) <= d);
        assert!(
            lb_csp(&pa, &pb, 0.0) <= d,
            "abandoned bound must stay admissible"
        );
    }

    #[test]
    fn deadline_aborts_and_generous_deadline_is_exact() {
        let a = model(&[(&[ld(), flush(), ld()], 0.5), (&[flush()], 0.2)]);
        let b = model(&[(&[nop()], 0.1), (&[ld()], 0.7)]);
        let mut engine = SimilarityEngine::new();
        let (pa, pb) = (engine.prepare(&a), engine.prepare(&b));
        let before = engine.stats();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            engine.distance_bounded_until(&pa, &pb, f64::INFINITY, Some(past)),
            Err(DeadlineExceeded)
        );
        // The abandoned comparison accounts all its cells as pruned.
        let delta = engine.stats().since(&before);
        assert_eq!(delta.cells + delta.cells_pruned, 4);
        // A generous deadline changes nothing: bitwise-identical result.
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let d = engine.distance(&pa, &pb);
        assert_eq!(
            engine.distance_bounded_until(&pa, &pb, f64::INFINITY, Some(far)),
            Ok(Bounded::Exact(d))
        );
    }

    #[test]
    fn prefix_dtw_matches_batch_distance_at_every_prefix() {
        let entry = model(&[
            (&[ld(), flush()], 0.3),
            (&[nop(), nop()], 0.1),
            (&[ld(), flush(), ld()], 0.25),
            (&[flush()], 0.6),
        ]);
        let target = model(&[
            (&[ld(), flush(), ld()], 0.25),
            (&[ld(), flush(), ld()], 0.2),
            (&[nop()], 0.0),
            (&[flush(), flush()], 0.5),
            (&[ld()], 0.45),
        ]);
        let mut engine = SimilarityEngine::new();
        let pe = engine.prepare(&entry);
        let mut pd = PrefixDtw::new(&pe);
        for k in 0..=target.len() {
            let prefix: CstBbs = target.steps()[..k].to_vec().into_iter().collect();
            let pp = engine.prepare(&prefix);
            let resumed = pd.distance_to(&mut engine, &pp);
            // Bitwise identity in both argument orders (the DP is
            // transpose-symmetric).
            assert_eq!(resumed.to_bits(), engine.distance(&pp, &pe).to_bits());
            assert_eq!(resumed.to_bits(), engine.distance(&pe, &pp).to_bits());
        }
        assert_eq!(pd.rebuilds(), 0, "append-only growth must resume");

        // A non-extending target (first step replaced) still scores
        // exactly, through a reset.
        let swapped = model(&[(&[nop()], 0.9), (&[ld()], 0.45)]);
        let ps = engine.prepare(&swapped);
        let d = pd.distance_to(&mut engine, &ps);
        assert_eq!(d.to_bits(), engine.distance(&ps, &pe).to_bits());
        assert_eq!(pd.rebuilds(), 1);

        // Empty conventions match `distance`.
        let pempty = engine.prepare(&CstBbs::default());
        assert_eq!(pd.distance_to(&mut engine, &pempty), 4.0);
        let mut pd_empty = PrefixDtw::new(&pempty);
        assert_eq!(pd_empty.distance_to(&mut engine, &pempty), 0.0);
        assert_eq!(pd_empty.distance_to(&mut engine, &ps), 2.0);
    }

    #[test]
    fn interning_is_shared_across_models() {
        let a = model(&[(&[ld(), flush()], 0.2)]);
        let b = model(&[(&[ld(), flush()], 0.7)]);
        let mut engine = SimilarityEngine::new();
        let pa = engine.prepare(&a);
        let pb = engine.prepare(&b);
        assert_eq!(engine.pool_len(), 1, "identical sequences share one entry");
        assert_eq!(pa.ids, pb.ids);
    }
}
