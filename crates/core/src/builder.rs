//! Parallel, content-addressed model construction.
//!
//! PR 2 made the similarity back end the fast half of the pipeline; the
//! front end still paid a full serial [`build_model`] pass per target, one
//! program at a time, from every eval round, bench binary, and baseline
//! adapter. Trace→model construction is embarrassingly parallel across
//! targets and highly redundant across repeated configs (threshold sweeps
//! re-model the same samples per round; mutated PoC variants share most of
//! their basic blocks), so the [`ModelBuilder`] attacks both:
//!
//! - **Parallelism**: [`ModelBuilder::build_batch`] fans a batch out over
//!   std-only `thread::scope` workers (mirroring `engine.rs` — no new
//!   deps) with an index-ordered merge, so results come back in input
//!   order and byte-identical to the serial path for any job count.
//! - **Content-addressed caching**: every finished model is stored under a
//!   [`ModelKey`] — a stable FNV-1a hash of a canonical rendering of
//!   (program instructions, victim, [`ModelingConfig`]) — in a bounded
//!   in-memory store with optional on-disk persistence (the
//!   `scaguard-modelcache v1` text format of [`crate::persist`]).
//! - **Stage memoization**: the trace + attack-relevant-graph stage (which
//!   includes the capped path enumeration of Algorithm 1) is cached under
//!   the key *minus* the CST-replay cache geometry, so configs differing
//!   only in `cst_cache` (replay-policy ablations) reuse the expensive
//!   execute/collect/graph work. Per-block CST replays are memoized in a
//!   shared [`ReplayMemo`] keyed by the byte-exact replay input.
//!
//! ## Soundness
//!
//! Every cache layer keys on *everything* the stage it short-circuits
//! reads, and nothing else:
//!
//! - `measure_cst` reads the per-instruction kind/access list and the full
//!   replay [`sca_cache::CacheConfig`]; the [`ReplayMemo`] key encodes
//!   exactly those bytes.
//! - `collect_and_graph` reads the program's instructions, the victim, the
//!   CPU configuration, and `path_cap`; the stage key renders exactly
//!   those. Program *name* and generator *tags* are deliberately excluded:
//!   no modeling stage reads them, so two differently-named but
//!   instruction-identical programs share one cache entry.
//! - `finish_model` additionally reads `cst_cache`; the full key appends
//!   it.
//!
//! Hash collisions can never alias entries: stores bucket by hash but
//! always compare the full canonical key before returning a value (see the
//! collision tests below). Because every memoized stage is a pure function
//! of its full key and the batch merge is index-ordered, builder output is
//! byte-identical to serial [`build_models`] — warm or cold, any `jobs`.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use sca_attacks::Sample;
use sca_cpu::Victim;
use sca_isa::Program;

use crate::cst::CstBbs;
use crate::modeling::{
    collect_and_graph, finish_model, fnv1a, ModelError, ModelingConfig, ModelingOutcome,
    ReplayMemo, TraceGraph,
};
use crate::persist::{self, LoadRepoError};

/// Default bound on each in-memory store (models and stages separately).
const DEFAULT_CAPACITY: usize = 4096;

/// Content address of one model: a stable hash plus the canonical key it
/// was computed from. The canonical key is a single-line rendering of
/// everything the modeling pipeline reads — program instructions, victim,
/// CPU config, path cap, and (for the full key) the CST-replay cache
/// config. Lookups compare the canonical key byte-for-byte, never the
/// hash alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelKey {
    hash: u64,
    canonical: String,
}

impl ModelKey {
    /// The full key: everything [`build_model`] reads.
    pub fn new(program: &Program, victim: &Victim, config: &ModelingConfig) -> ModelKey {
        let canonical = format!(
            "{} | cst_cache {:?}",
            stage_canonical(program, victim, config),
            config.cst_cache
        );
        ModelKey::from_canonical(canonical)
    }

    /// Rebuild a key from its canonical form (the hash is recomputed, so a
    /// corrupted or foreign hash can never alias an entry).
    fn from_canonical(canonical: String) -> ModelKey {
        ModelKey {
            hash: fnv1a(canonical.as_bytes()),
            canonical,
        }
    }

    /// The stable content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The canonical key string.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// Test-only: a key with a forced hash, for exercising collision
    /// handling.
    #[cfg(test)]
    fn with_forced_hash(hash: u64, canonical: &str) -> ModelKey {
        ModelKey {
            hash,
            canonical: canonical.to_string(),
        }
    }
}

/// Canonical rendering of the *stage* inputs — everything
/// `collect_and_graph` reads (no `cst_cache`). `Debug` for these types is
/// single-line and structural, and the rendered fields are exactly the
/// pipeline's inputs, so equal strings imply equal stage outputs.
fn stage_canonical(program: &Program, victim: &Victim, config: &ModelingConfig) -> String {
    format!(
        "insts {:?} | victim {:?} | cpu {:?} | path_cap {}",
        program.insts(),
        victim,
        config.cpu,
        config.path_cap
    )
}

/// A cached model: the detection model always, the full outcome when this
/// process built it (disk-loaded entries carry the model only — the
/// intermediate artifacts are not persisted).
#[derive(Debug, Clone)]
struct CachedModel {
    outcome: Option<Arc<ModelingOutcome>>,
    model: Arc<CstBbs>,
}

/// A bounded content-addressed store: hash buckets with full-canonical-key
/// comparison and FIFO eviction.
#[derive(Debug)]
struct Store<V> {
    map: HashMap<u64, Vec<(String, V)>>,
    order: VecDeque<(u64, String)>,
    capacity: usize,
}

impl<V: Clone> Store<V> {
    fn new(capacity: usize) -> Store<V> {
        Store {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: &ModelKey) -> Option<V> {
        self.map.get(&key.hash)?.iter().find_map(|(k, v)| {
            if *k == key.canonical {
                Some(v.clone())
            } else {
                None
            }
        })
    }

    /// Insert (or replace) the value for `key`, evicting the oldest entry
    /// when over capacity.
    fn insert(&mut self, key: &ModelKey, value: V) {
        let bucket = self.map.entry(key.hash).or_default();
        if let Some(slot) = bucket.iter_mut().find(|(k, _)| *k == key.canonical) {
            slot.1 = value;
            return;
        }
        bucket.push((key.canonical.clone(), value));
        self.order.push_back((key.hash, key.canonical.clone()));
        while self.order.len() > self.capacity {
            let (hash, canonical) = self.order.pop_front().expect("nonempty");
            if let Some(bucket) = self.map.get_mut(&hash) {
                bucket.retain(|(k, _)| *k != canonical);
                if bucket.is_empty() {
                    self.map.remove(&hash);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    /// All `(canonical key, value)` pairs in insertion order.
    fn entries(&self) -> impl Iterator<Item = (&str, &V)> {
        self.order.iter().filter_map(|(hash, canonical)| {
            self.map.get(hash).and_then(|bucket| {
                bucket
                    .iter()
                    .find(|(k, _)| k == canonical)
                    .map(|(k, v)| (k.as_str(), v))
            })
        })
    }
}

/// Cache-effectiveness counters of one [`ModelBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuilderStats {
    /// Full-model cache hits (outcome or model served without rebuilding).
    pub hits: u64,
    /// Full-model cache misses.
    pub misses: u64,
    /// Trace+graph stage served from the stage cache.
    pub stage_hits: u64,
    /// Per-block CST replays served from the replay memo.
    pub replays_memoized: u64,
    /// Per-block CST replays actually simulated.
    pub replays_simulated: u64,
}

/// Batch model-construction engine: parallel across targets, with
/// content-addressed model/stage caches and a shared CST-replay memo. See
/// the module docs for the soundness argument.
///
/// All methods take `&self`; the builder is internally synchronized and
/// can be shared across threads (e.g. behind an [`Arc`]).
#[derive(Debug)]
pub struct ModelBuilder {
    config: ModelingConfig,
    jobs: usize,
    models: Mutex<Store<CachedModel>>,
    stages: Mutex<Store<Arc<TraceGraph>>>,
    memo: ReplayMemo,
    hits: AtomicU64,
    misses: AtomicU64,
    stage_hits: AtomicU64,
    disk_path: Option<PathBuf>,
    dirty: AtomicBool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ModelBuilder {
    /// A builder for `config` with a single worker and the default store
    /// capacity.
    pub fn new(config: &ModelingConfig) -> ModelBuilder {
        ModelBuilder {
            config: config.clone(),
            jobs: 1,
            models: Mutex::new(Store::new(DEFAULT_CAPACITY)),
            stages: Mutex::new(Store::new(DEFAULT_CAPACITY)),
            memo: ReplayMemo::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stage_hits: AtomicU64::new(0),
            disk_path: None,
            dirty: AtomicBool::new(false),
        }
    }

    /// Set the worker count for batch builds (`0` and `1` both mean
    /// serial).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> ModelBuilder {
        self.jobs = jobs.max(1);
        self
    }

    /// Bound both in-memory stores at `capacity` entries (FIFO eviction).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> ModelBuilder {
        self.models = Mutex::new(Store::new(capacity));
        self.stages = Mutex::new(Store::new(capacity));
        self
    }

    /// Attach an on-disk cache file. If it exists its entries are loaded
    /// (models only — intermediate artifacts are not persisted); a
    /// missing file is an empty cache. [`ModelBuilder::save_disk_cache`]
    /// writes the store back.
    ///
    /// # Errors
    ///
    /// Returns [`LoadRepoError`] when the file exists but cannot be read
    /// or parsed.
    pub fn with_disk_cache(
        mut self,
        path: impl AsRef<Path>,
    ) -> Result<ModelBuilder, LoadRepoError> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            let entries = persist::load_model_cache(&path)?;
            let mut models = lock(&self.models);
            for (canonical, model) in entries {
                let key = ModelKey::from_canonical(canonical);
                models.insert(
                    &key,
                    CachedModel {
                        outcome: None,
                        model: Arc::new(model),
                    },
                );
            }
        }
        drop(self.disk_path.replace(path));
        Ok(self)
    }

    /// The modeling configuration all builds use.
    pub fn config(&self) -> &ModelingConfig {
        &self.config
    }

    /// The batch worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> BuilderStats {
        let (memoized, simulated) = self.memo.counts();
        BuilderStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stage_hits: self.stage_hits.load(Ordering::Relaxed),
            replays_memoized: memoized,
            replays_simulated: simulated,
        }
    }

    /// Build (or recall) the full modeling outcome for one target.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the pipeline. Errors are not
    /// cached; a failing target is retried on every call.
    pub fn build(
        &self,
        program: &Program,
        victim: &Victim,
    ) -> Result<Arc<ModelingOutcome>, ModelError> {
        self.build_with(program, victim, &self.config)
    }

    /// [`ModelBuilder::build`] under a one-off configuration override.
    /// The cache keys embed the config, so one builder safely serves many
    /// configs — and configs differing only in `cst_cache` (the
    /// replay-policy ablations) share stage-cache entries.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the pipeline.
    pub fn build_with(
        &self,
        program: &Program,
        victim: &Victim,
        config: &ModelingConfig,
    ) -> Result<Arc<ModelingOutcome>, ModelError> {
        let mut sp = sca_telemetry::span("builder.build");
        let key = ModelKey::new(program, victim, config);
        let cached = lock(&self.models).get(&key);
        if let Some(CachedModel {
            outcome: Some(outcome),
            ..
        }) = cached
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if sp.is_recording() {
                sp.attr("program", program.name());
                sp.attr("cached", true);
                sca_telemetry::counter("modelcache.hits", 1);
            }
            return Ok(outcome);
        }
        // A disk-loaded (model-only) entry cannot serve a full outcome:
        // rebuild it — stage cache and replay memo still apply — and
        // upgrade the entry.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = Arc::new(self.rebuild(program, victim, config)?);
        let entry = CachedModel {
            model: Arc::new(outcome.cst_bbs.clone()),
            outcome: Some(Arc::clone(&outcome)),
        };
        lock(&self.models).insert(&key, entry);
        self.dirty.store(true, Ordering::Relaxed);
        if sp.is_recording() {
            sp.attr("program", program.name());
            sp.attr("cached", false);
            sca_telemetry::counter("modelcache.misses", 1);
        }
        Ok(outcome)
    }

    /// Build (or recall) just the detection model for one target. Unlike
    /// [`ModelBuilder::build`], this is served directly by disk-loaded
    /// entries.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the pipeline.
    pub fn build_cst(&self, program: &Program, victim: &Victim) -> Result<Arc<CstBbs>, ModelError> {
        let mut sp = sca_telemetry::span("builder.build");
        let key = ModelKey::new(program, victim, &self.config);
        if let Some(cached) = lock(&self.models).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if sp.is_recording() {
                sp.attr("program", program.name());
                sp.attr("cached", true);
                sca_telemetry::counter("modelcache.hits", 1);
            }
            return Ok(cached.model);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = Arc::new(self.rebuild(program, victim, &self.config)?);
        let model = Arc::new(outcome.cst_bbs.clone());
        let entry = CachedModel {
            model: Arc::clone(&model),
            outcome: Some(outcome),
        };
        lock(&self.models).insert(&key, entry);
        self.dirty.store(true, Ordering::Relaxed);
        if sp.is_recording() {
            sp.attr("program", program.name());
            sp.attr("cached", false);
            sca_telemetry::counter("modelcache.misses", 1);
        }
        Ok(model)
    }

    /// Run the pipeline for a cache miss, via the stage cache and the
    /// shared replay memo.
    fn rebuild(
        &self,
        program: &Program,
        victim: &Victim,
        config: &ModelingConfig,
    ) -> Result<ModelingOutcome, ModelError> {
        let stage_key = ModelKey::from_canonical(stage_canonical(program, victim, config));
        // Bind the lookup first: a `match` scrutinee would keep the guard
        // alive into the `None` arm and deadlock on the re-lock below.
        let cached_stage = lock(&self.stages).get(&stage_key);
        let tg = match cached_stage {
            Some(tg) => {
                self.stage_hits.fetch_add(1, Ordering::Relaxed);
                tg
            }
            None => {
                let tg = Arc::new(collect_and_graph(program, victim, config)?);
                lock(&self.stages).insert(&stage_key, Arc::clone(&tg));
                tg
            }
        };
        Ok(finish_model(program, config, &tg, Some(&self.memo)))
    }

    /// Build a whole batch, fanning out over [`ModelBuilder::jobs`]
    /// workers. Results are in `targets` order; each is byte-identical to
    /// a serial [`build_model`] of the same target.
    pub fn build_batch(
        &self,
        targets: &[(&Program, &Victim)],
    ) -> Vec<Result<Arc<ModelingOutcome>, ModelError>> {
        self.build_batch_jobs(targets, self.jobs)
    }

    /// [`ModelBuilder::build_batch`] with a one-off worker count.
    pub fn build_batch_jobs(
        &self,
        targets: &[(&Program, &Victim)],
        jobs: usize,
    ) -> Vec<Result<Arc<ModelingOutcome>, ModelError>> {
        self.batch(targets, jobs, |p, v| self.build(p, v))
    }

    /// [`ModelBuilder::build_batch`], returning just the detection
    /// models.
    pub fn build_batch_cst(
        &self,
        targets: &[(&Program, &Victim)],
    ) -> Vec<Result<Arc<CstBbs>, ModelError>> {
        self.build_batch_cst_jobs(targets, self.jobs)
    }

    /// [`ModelBuilder::build_batch_cst`] with a one-off worker count.
    pub fn build_batch_cst_jobs(
        &self,
        targets: &[(&Program, &Victim)],
        jobs: usize,
    ) -> Vec<Result<Arc<CstBbs>, ModelError>> {
        self.batch(targets, jobs, |p, v| self.build_cst(p, v))
    }

    /// Build every sample of an eval set (convenience over
    /// [`ModelBuilder::build_batch`]).
    pub fn build_samples(
        &self,
        samples: &[Sample],
    ) -> Vec<Result<Arc<ModelingOutcome>, ModelError>> {
        let targets: Vec<(&Program, &Victim)> =
            samples.iter().map(|s| (&s.program, &s.victim)).collect();
        self.build_batch(&targets)
    }

    /// The shared worker pool: index-claimed work, index-ordered merge
    /// (the `detector.rs` / `engine.rs` pattern).
    fn batch<T: Send>(
        &self,
        targets: &[(&Program, &Victim)],
        jobs: usize,
        build_one: impl Fn(&Program, &Victim) -> Result<T, ModelError> + Sync,
    ) -> Vec<Result<T, ModelError>> {
        let mut sp = sca_telemetry::span("builder.build_batch");
        let jobs = jobs.clamp(1, targets.len().max(1));
        if sp.is_recording() {
            sp.attr("targets", targets.len());
            sp.attr("jobs", jobs);
            sca_telemetry::counter("builder.jobs", jobs as u64);
        }
        if jobs <= 1 {
            return targets.iter().map(|(p, v)| build_one(p, v)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T, ModelError>>>> =
            targets.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= targets.len() {
                        break;
                    }
                    let (p, v) = targets[i];
                    *lock(&slots[i]) = Some(build_one(p, v));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every target built")
            })
            .collect()
    }

    /// Write the model store to the attached disk cache (no-op without
    /// one, or when nothing changed since the last save/load).
    ///
    /// # Errors
    ///
    /// Returns [`LoadRepoError::Io`] on filesystem errors.
    pub fn save_disk_cache(&self) -> Result<(), LoadRepoError> {
        let Some(path) = &self.disk_path else {
            return Ok(());
        };
        if !self.dirty.swap(false, Ordering::Relaxed) {
            return Ok(());
        }
        let models = lock(&self.models);
        let entries: Vec<(&str, &CstBbs)> = models
            .entries()
            .map(|(k, v)| (k, v.model.as_ref()))
            .collect();
        persist::save_model_cache(entries, path)
    }

    /// Number of cached models.
    pub fn len(&self) -> usize {
        lock(&self.models).len()
    }

    /// Whether the model store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_attacks::poc::{self, PocParams};

    #[test]
    fn store_collision_compares_full_key() {
        let mut store: Store<u32> = Store::new(16);
        let a = ModelKey::with_forced_hash(42, "alpha");
        let b = ModelKey::with_forced_hash(42, "beta");
        store.insert(&a, 1);
        assert_eq!(store.get(&a), Some(1));
        // Same hash, different canonical key: never served a stale value.
        assert_eq!(store.get(&b), None);
        store.insert(&b, 2);
        assert_eq!(store.get(&a), Some(1));
        assert_eq!(store.get(&b), Some(2));
    }

    #[test]
    fn store_evicts_fifo_at_capacity() {
        let mut store: Store<u32> = Store::new(2);
        let keys: Vec<ModelKey> = (0..3)
            .map(|i| ModelKey::from_canonical(format!("k{i}")))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            store.insert(k, i as u32);
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&keys[0]), None, "oldest entry evicted");
        assert_eq!(store.get(&keys[1]), Some(1));
        assert_eq!(store.get(&keys[2]), Some(2));
    }

    #[test]
    fn store_replaces_in_place() {
        let mut store: Store<u32> = Store::new(4);
        let k = ModelKey::from_canonical("k".into());
        store.insert(&k, 1);
        store.insert(&k, 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&k), Some(2));
    }

    #[test]
    fn store_entries_iterate_in_insertion_order() {
        let mut store: Store<u32> = Store::new(8);
        for i in 0..4 {
            store.insert(&ModelKey::from_canonical(format!("k{i}")), i);
        }
        let got: Vec<u32> = store.entries().map(|(_, v)| *v).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn keys_separate_configs_and_targets() {
        let s1 = poc::flush_reload_iaik(&PocParams::default());
        let s2 = poc::prime_probe_iaik(&PocParams::default());
        let base = ModelingConfig::default();
        let mut other_replay = base.clone();
        other_replay.cst_cache.sets *= 2;
        let mut other_cap = base.clone();
        other_cap.path_cap += 1;

        let k =
            |s: &sca_attacks::Sample, c: &ModelingConfig| ModelKey::new(&s.program, &s.victim, c);
        assert_eq!(k(&s1, &base), k(&s1, &base));
        assert_ne!(k(&s1, &base).canonical, k(&s2, &base).canonical);
        assert_ne!(k(&s1, &base).canonical, k(&s1, &other_replay).canonical);
        assert_ne!(k(&s1, &base).canonical, k(&s1, &other_cap).canonical);
        // The stage key ignores the replay-cache geometry…
        assert_eq!(
            stage_canonical(&s1.program, &s1.victim, &base),
            stage_canonical(&s1.program, &s1.victim, &other_replay)
        );
        // …but not the path cap.
        assert_ne!(
            stage_canonical(&s1.program, &s1.victim, &base),
            stage_canonical(&s1.program, &s1.victim, &other_cap)
        );
    }
}
