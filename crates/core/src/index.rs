//! A persisted metric index over the model repository, for sublinear
//! repository scans.
//!
//! The engine's lower-bound cascade (DESIGN.md §10) prunes DTW *cells*
//! per entry, but a classify still visits every repository entry. With
//! thousands of enrolled variants that linear walk — and the `O(n log m)`
//! per-entry bounds it evaluates — dominates. [`RepoIndex`] restores a
//! near-constant number of full DTW runs per query:
//!
//! * **Pivots**: a handful of basic-block instruction sequences chosen by
//!   a deterministic greedy k-center sweep over the repository's distinct
//!   sequences. For every entry, the index stores the *sorted* unnormalized
//!   Levenshtein distances from each of its steps to each pivot (plus the
//!   entry's longest step). Levenshtein over sequences is a true metric,
//!   so the triangle inequality turns those stored distances into lower
//!   bounds on any step-to-step `D_IS` without touching the sequences.
//! * **Sort keys** ([`QueryContext::interval_bound`]): per query, each
//!   entry gets an `O(P log n)` lower bound from the pivot distances; the
//!   scan visits entries cheapest-first and *stops* at the first key above
//!   the best distance found so far — every later key is at least as
//!   large, so the remaining entries are rejected wholesale.
//! * **Per-entry pruning** ([`QueryContext::nn_bound`]): a sharper
//!   nearest-neighbor form of the same triangle bound, evaluated only for
//!   entries that survive the cheaper cascade stages, just before DTW.
//!
//! All pivot-derived bounds are pruning-only: they decide what work the
//! scan *skips*, never what it *reports*, so detections are byte-identical
//! with and without an index (asserted in tests and in the bench before
//! timing). The index is built at enroll time, persisted beside the repo
//! (`persist::save_index`), and validated against the repository by
//! fingerprint on load so a stale sidecar can never influence a scan.

use std::collections::HashMap;
use std::fmt;

use sca_isa::NormInst;

use crate::cst::CstBbs;
use crate::detector::ModelRepository;
use crate::modeling::fnv1a;
use crate::persist::repository_to_string;
use crate::similarity::levenshtein;

/// Tuning knobs for [`RepoIndex::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Number of pivot sequences to select (capped by the number of
    /// distinct sequences in the repository). More pivots sharpen the
    /// triangle bounds at `O(P)` extra work per bound evaluation.
    pub pivots: usize,
}

impl Default for IndexConfig {
    fn default() -> IndexConfig {
        IndexConfig { pivots: 4 }
    }
}

/// Greedy k-center candidate pool cap: pivot selection is quadratic in
/// the pool, so it considers at most this many distinct sequences (in
/// first-occurrence order — deterministic for a given repository).
const CANDIDATE_CAP: usize = 256;

/// Per-entry index payload: what the pivot bounds need to price an entry
/// without touching its model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct EntryPivots {
    /// Length of the entry's longest step sequence (0 for an empty model).
    pub(crate) max_len: u32,
    /// For each pivot, the entry's per-step Levenshtein distances to that
    /// pivot, **sorted ascending** (one inner vec per pivot; empty for an
    /// empty model).
    pub(crate) levs: Vec<Vec<u32>>,
}

/// The persisted metric index over a [`ModelRepository`].
///
/// Built once at enroll time ([`RepoIndex::build`]), persisted via
/// `persist::save_index`, and attached to a `Detector` with
/// `Detector::set_index`. [`RepoIndex::matches`] ties an index to the
/// exact repository it was built from (FNV-1a over the repository's
/// canonical serialization), so stale or foreign sidecars are rejected
/// and rebuilt instead of silently degrading a scan.
#[derive(Debug, Clone, PartialEq)]
pub struct RepoIndex {
    pub(crate) fingerprint: u64,
    pub(crate) pivots: Vec<Vec<NormInst>>,
    pub(crate) entries: Vec<EntryPivots>,
    /// Flat per-(entry, pivot) `[min, max]` stored-distance endpoints,
    /// entry-major — all [`QueryContext::interval_bound`] needs, laid
    /// out so the per-query sort-key pass streams sequential memory
    /// instead of chasing each entry's per-pivot vectors. `(1, 0)`
    /// (empty interval) marks a pivot with no stored distances. Derived
    /// from `entries` on build and load, never persisted.
    intervals: Vec<(u32, u32)>,
    /// Flat copy of each entry's `max_len`, same motivation.
    max_lens: Vec<u32>,
}

/// Fingerprint of a repository's canonical serialization — the identity
/// an index is bound to.
pub fn repo_fingerprint(repo: &ModelRepository) -> u64 {
    fnv1a(repository_to_string(repo).as_bytes())
}

/// An index was attached to a repository it was not built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexMismatch;

impl fmt::Display for IndexMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repository index does not match the repository it was attached to (stale or foreign index)"
        )
    }
}

impl std::error::Error for IndexMismatch {}

impl RepoIndex {
    /// Build the index for `repo`. Deterministic: the same repository
    /// always yields the same pivots and the same serialized index.
    pub fn build(repo: &ModelRepository, config: &IndexConfig) -> RepoIndex {
        let fingerprint = repo_fingerprint(repo);
        // Distinct step sequences in first-occurrence order.
        let mut seen: HashMap<&[NormInst], usize> = HashMap::new();
        let mut distinct: Vec<&[NormInst]> = Vec::new();
        for entry in repo.entries() {
            for step in entry.model.steps() {
                let seq: &[NormInst] = &step.norm_insts;
                if !seen.contains_key(seq) {
                    seen.insert(seq, distinct.len());
                    distinct.push(seq);
                }
            }
        }
        let pool = &distinct[..distinct.len().min(CANDIDATE_CAP)];
        let pivots = select_pivots(pool, config.pivots);
        // Per distinct sequence, its Levenshtein distance to each pivot —
        // computed once and shared by every step that interns to it.
        let dist_to_pivots: Vec<Vec<u32>> = distinct
            .iter()
            .map(|seq| pivots.iter().map(|p| lev_u32(seq, p)).collect())
            .collect();
        let entries = repo
            .entries()
            .iter()
            .map(|entry| {
                let steps = entry.model.steps();
                let max_len = steps
                    .iter()
                    .map(|s| u32::try_from(s.norm_insts.len()).expect("block too long"))
                    .max()
                    .unwrap_or(0);
                let mut levs: Vec<Vec<u32>> = vec![Vec::with_capacity(steps.len()); pivots.len()];
                for step in steps {
                    let did = seen[&step.norm_insts[..]];
                    for (p, lev) in dist_to_pivots[did].iter().enumerate() {
                        levs[p].push(*lev);
                    }
                }
                for per_pivot in &mut levs {
                    per_pivot.sort_unstable();
                }
                EntryPivots { max_len, levs }
            })
            .collect();
        RepoIndex::from_parts(
            fingerprint,
            pivots.into_iter().map(<[NormInst]>::to_vec).collect(),
            entries,
        )
    }

    /// Assemble an index from its built or persisted parts, deriving
    /// the flat per-(entry, pivot) interval layout the sort-key pass
    /// streams.
    pub(crate) fn from_parts(
        fingerprint: u64,
        pivots: Vec<Vec<NormInst>>,
        entries: Vec<EntryPivots>,
    ) -> RepoIndex {
        let mut intervals = Vec::with_capacity(entries.len() * pivots.len());
        let mut max_lens = Vec::with_capacity(entries.len());
        for e in &entries {
            max_lens.push(e.max_len);
            for levs in &e.levs {
                match (levs.first(), levs.last()) {
                    (Some(&lo), Some(&hi)) => intervals.push((lo, hi)),
                    _ => intervals.push((1, 0)),
                }
            }
        }
        RepoIndex {
            fingerprint,
            pivots,
            entries,
            intervals,
            max_lens,
        }
    }

    /// Whether this index was built from exactly this repository.
    pub fn matches(&self, repo: &ModelRepository) -> bool {
        self.entries.len() == repo.len() && self.fingerprint == repo_fingerprint(repo)
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index covers no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of pivot sequences.
    pub fn pivot_count(&self) -> usize {
        self.pivots.len()
    }

    /// Prepare a query: the target's per-step Levenshtein distances to
    /// every pivot (memoized per distinct step sequence), sorted with
    /// prefix sums so per-entry bounds come out in `O(P log n)`.
    pub fn query(&self, target: &CstBbs) -> QueryContext<'_> {
        let steps = target.steps();
        let mut memo: HashMap<&[NormInst], Vec<u32>> = HashMap::new();
        let mut per_step: Vec<Vec<u32>> = vec![Vec::with_capacity(steps.len()); self.pivots.len()];
        let mut lens = Vec::with_capacity(steps.len());
        let mut max_len = 0u32;
        for step in steps {
            let seq: &[NormInst] = &step.norm_insts;
            let levs = memo
                .entry(seq)
                .or_insert_with(|| self.pivots.iter().map(|p| lev_u32(seq, p)).collect());
            for (p, lev) in levs.iter().enumerate() {
                per_step[p].push(*lev);
            }
            let l = u32::try_from(seq.len()).expect("block too long");
            lens.push(l);
            max_len = max_len.max(l);
        }
        let mut sorted = Vec::with_capacity(per_step.len());
        let mut pre = Vec::with_capacity(per_step.len());
        let mut luts = Vec::with_capacity(per_step.len());
        for levs in &per_step {
            let mut s = levs.clone();
            s.sort_unstable();
            let mut acc = Vec::with_capacity(s.len() + 1);
            let mut sum = 0u64;
            acc.push(0);
            for &v in &s {
                sum += u64::from(v);
                acc.push(sum);
            }
            luts.push(PivotLut::build(&s, &acc));
            sorted.push(s);
            pre.push(acc);
        }
        QueryContext {
            index: self,
            per_step,
            sorted,
            pre,
            luts,
            lens,
            max_len,
        }
    }
}

/// Distance values above this skip the LUT (a table that large would
/// cost more than the binary searches it replaces). Far beyond any
/// realistic basic-block Levenshtein distance.
const LUT_VALUE_CAP: u32 = 1 << 16;

/// One pivot's value-indexed cumulative tables over the target's pivot
/// distances: `cnt[v]` and `sum[v]` are the count and `u64` sum of
/// target distances `<= v`, for `v` up to the largest target distance.
/// Turns the two binary searches per [`QueryContext::interval_bound`]
/// call into two array loads; the arithmetic is integer-identical to
/// the search path, which remains the fallback when no table exists.
#[derive(Debug)]
struct PivotLut {
    cnt: Vec<u32>,
    sum: Vec<u64>,
}

impl PivotLut {
    /// Build the tables from one pivot's sorted target distances `s` and
    /// their prefix sums `pre` (`pre[i]` = sum of the `i` smallest).
    /// `None` when there are no distances or the largest is implausibly
    /// big.
    fn build(s: &[u32], pre: &[u64]) -> Option<PivotLut> {
        let &max = s.last()?;
        if max >= LUT_VALUE_CAP {
            return None;
        }
        let mut cnt = vec![0u32; max as usize + 1];
        for &v in s {
            cnt[v as usize] += 1;
        }
        let mut sum = vec![0u64; max as usize + 1];
        let mut seen = 0u32;
        for v in 0..=max as usize {
            seen += cnt[v];
            cnt[v] = seen;
            sum[v] = pre[seen as usize];
        }
        Some(PivotLut { cnt, sum })
    }

    /// `(count, sum)` of target distances `<= v`.
    #[inline]
    fn le(&self, v: u32) -> (usize, u64) {
        let i = (v as usize).min(self.cnt.len() - 1);
        (self.cnt[i] as usize, self.sum[i])
    }
}

/// Greedy k-center over the candidate pool: the first pivot is the
/// longest sequence (earliest occurrence on ties), each further pivot
/// maximizes its minimum Levenshtein distance to the already-chosen set
/// (again earliest-first on ties). Deterministic, and distinct candidates
/// guarantee positive separation until the pool is exhausted.
fn select_pivots<'a>(pool: &[&'a [NormInst]], want: usize) -> Vec<&'a [NormInst]> {
    let k = want.min(pool.len());
    if k == 0 {
        return Vec::new();
    }
    let mut first = 0;
    for (i, seq) in pool.iter().enumerate() {
        if seq.len() > pool[first].len() {
            first = i;
        }
    }
    let mut chosen = vec![pool[first]];
    let mut min_d: Vec<u32> = pool.iter().map(|seq| lev_u32(seq, pool[first])).collect();
    while chosen.len() < k {
        let mut best = 0;
        for (i, &d) in min_d.iter().enumerate() {
            if d > min_d[best] {
                best = i;
            }
        }
        if min_d[best] == 0 {
            break;
        }
        chosen.push(pool[best]);
        for (i, seq) in pool.iter().enumerate() {
            min_d[i] = min_d[i].min(lev_u32(seq, pool[best]));
        }
    }
    chosen
}

fn lev_u32(a: &[NormInst], b: &[NormInst]) -> u32 {
    u32::try_from(levenshtein(a, b)).expect("sequence too long")
}

/// A target readied for pivot-bound evaluation against every entry of one
/// index. Built once per classify by [`RepoIndex::query`].
#[derive(Debug)]
pub struct QueryContext<'a> {
    index: &'a RepoIndex,
    /// Per pivot, the target's per-step Levenshtein distances (step order).
    per_step: Vec<Vec<u32>>,
    /// `per_step`, sorted ascending per pivot.
    sorted: Vec<Vec<u32>>,
    /// `u64` prefix sums over `sorted` (index `i` = sum of the `i`
    /// smallest values) — exact integer arithmetic, no float drift.
    pre: Vec<Vec<u64>>,
    /// Per-pivot cumulative lookup tables over `sorted`, replacing the
    /// two binary searches per [`QueryContext::interval_bound`] call
    /// with two array loads (`None` falls back to the searches).
    luts: Vec<Option<PivotLut>>,
    /// The target's per-step sequence lengths (step order).
    lens: Vec<u32>,
    /// The target's longest step sequence.
    max_len: u32,
}

impl QueryContext<'_> {
    /// The cheap pivot bound used as the scan's sort-key component,
    /// `O(P log n)`: for each pivot, every target step's gap to the
    /// entry's *interval* of stored pivot distances, summed via prefix
    /// sums and normalized by the largest step length either model could
    /// contribute; the best pivot wins.
    ///
    /// Admissible: a warping path visits every target step `i` at least
    /// once, each visit costs at least `D_IS/2 = lev(i, j) / (2·max(l_i,
    /// l_j))`, and by the Levenshtein triangle inequality `lev(i, j) ≥
    /// |lev(i, p) − lev(j, p)| ≥` the gap of `lev(i, p)` to the entry's
    /// `[min, max]` pivot-distance interval. Enlarging the denominator to
    /// `2·max(target max_len, entry max_len)` (≥ any `max(l_i, l_j)`)
    /// keeps the closed-form sum below the per-step sum it relaxes.
    pub fn interval_bound(&self, entry: usize) -> f64 {
        let ix = self.index;
        let denom_len = self.max_len.max(ix.max_lens[entry]);
        if denom_len == 0 {
            return 0.0;
        }
        let denom = 2.0 * f64::from(denom_len);
        let p_cnt = ix.pivots.len();
        let mut best = 0.0f64;
        for (p, &(lo, hi)) in ix.intervals[entry * p_cnt..][..p_cnt].iter().enumerate() {
            if lo > hi {
                // Empty-interval sentinel: no stored distances for this
                // pivot.
                continue;
            }
            let s = &self.sorted[p];
            let pre = &self.pre[p];
            let n = s.len();
            // `(count, sum)` of target distances `< lo` and `<= hi` —
            // two table loads per pivot, or two binary searches when no
            // table was built. Identical integers either way.
            let ((a, sum_a), (b, sum_b)) = match &self.luts[p] {
                Some(lut) => {
                    let below = if lo == 0 { (0, 0) } else { lut.le(lo - 1) };
                    (below, lut.le(hi))
                }
                None => {
                    let a = s.partition_point(|&x| x < lo);
                    let b = s.partition_point(|&x| x <= hi);
                    ((a, pre[a]), (b, pre[b]))
                }
            };
            let left = u64::from(lo) * a as u64 - sum_a;
            let right = (pre[n] - sum_b) - u64::from(hi) * (n - b) as u64;
            best = best.max((left + right) as f64 / denom);
        }
        best
    }

    /// The sharper nearest-neighbor pivot bound, `O(n·P log m)`: per
    /// target step, each pivot's gap to the *nearest* stored entry
    /// distance (binary search), the best pivot per step, normalized by
    /// `2·max(l_i, entry max_len)` and summed. Evaluated only for entries
    /// the cheaper cascade stages failed to disqualify, as the last gate
    /// before DTW.
    ///
    /// Admissible like [`QueryContext::interval_bound`]: whatever entry
    /// step `j` a visit matches, `lev(j, p)` is *one of* the stored
    /// distances, so the nearest-neighbor gap cannot exceed
    /// `|lev(i, p) − lev(j, p)| ≤ lev(i, j)`; that holds per pivot, hence
    /// for the per-step maximum over pivots, and `l_j ≤` entry `max_len`
    /// bounds the denominator.
    pub fn nn_bound(&self, entry: usize) -> f64 {
        let e = &self.index.entries[entry];
        let mut sum = 0.0f64;
        for (i, &l) in self.lens.iter().enumerate() {
            let mut gap = 0u32;
            for (p, elevs) in e.levs.iter().enumerate() {
                if elevs.is_empty() {
                    continue;
                }
                let t = self.per_step[p][i];
                let at = elevs.partition_point(|&x| x < t);
                let mut g = u32::MAX;
                if at > 0 {
                    g = g.min(t - elevs[at - 1]);
                }
                if at < elevs.len() {
                    g = g.min(elevs[at] - t);
                }
                gap = gap.max(g);
            }
            let denom = l.max(e.max_len);
            if denom > 0 && gap > 0 {
                sum += f64::from(gap) / (2.0 * f64::from(denom));
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{Cst, CstStep};
    use sca_attacks::AttackFamily;

    fn step(tokens: &[&'static str]) -> CstStep {
        CstStep {
            bb_addr: 0,
            norm_insts: tokens.iter().map(|t| NormInst::nullary(t)).collect(),
            cst: Cst::identity(),
            first_seen: 0,
        }
    }

    fn model(blocks: &[&[&'static str]]) -> CstBbs {
        blocks.iter().map(|b| step(b)).collect()
    }

    fn small_repo() -> ModelRepository {
        let mut repo = ModelRepository::new();
        repo.add_model(
            AttackFamily::FlushReload,
            "a",
            model(&[&["ld", "clflush"], &["ld"]]),
        );
        repo.add_model(
            AttackFamily::PrimeProbe,
            "b",
            model(&[&["nop", "nop", "nop"], &["ld", "ld"]]),
        );
        repo.add_model(AttackFamily::SpectreFlushReload, "c", model(&[]));
        repo
    }

    #[test]
    fn build_is_deterministic_and_bound_to_the_repo() {
        let repo = small_repo();
        let config = IndexConfig::default();
        let a = RepoIndex::build(&repo, &config);
        let b = RepoIndex::build(&repo, &config);
        assert_eq!(a, b);
        assert!(a.matches(&repo));
        assert_eq!(a.len(), repo.len());
        let mut other = small_repo();
        other.add_model(AttackFamily::SpectrePrimeProbe, "d", model(&[&["halt"]]));
        assert!(!a.matches(&other));
    }

    #[test]
    fn pivot_count_is_capped_by_distinct_sequences() {
        let repo = small_repo();
        let ix = RepoIndex::build(&repo, &IndexConfig { pivots: 64 });
        // The repo holds 4 distinct sequences; no more pivots than that.
        assert!(ix.pivot_count() <= 4);
        assert!(ix.pivot_count() >= 1);
    }

    #[test]
    fn empty_repo_indexes_cleanly() {
        let repo = ModelRepository::new();
        let ix = RepoIndex::build(&repo, &IndexConfig::default());
        assert!(ix.is_empty());
        assert_eq!(ix.pivot_count(), 0);
        assert!(ix.matches(&repo));
        // Querying an empty index is a no-op but must not panic.
        let q = ix.query(&model(&[&["ld"]]));
        assert_eq!(q.max_len, 1);
    }

    #[test]
    fn bounds_are_zero_on_an_enrolled_duplicate() {
        let repo = small_repo();
        let ix = RepoIndex::build(&repo, &IndexConfig::default());
        let target = model(&[&["ld", "clflush"], &["ld"]]);
        let q = ix.query(&target);
        assert_eq!(q.interval_bound(0), 0.0);
        assert_eq!(q.nn_bound(0), 0.0);
    }
}
