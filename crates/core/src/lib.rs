//! # scaguard — attack behavior modeling and similarity-based detection
//!
//! A faithful reproduction of **SCAGuard** (Wang, Bu, Song — DAC 2023):
//! detection and classification of cache side-channel attacks (CSCAs) via
//! attack behavior modeling and similarity comparison.
//!
//! ## Pipeline
//!
//! Given a program (and the victim it would run against), SCAGuard:
//!
//! 1. executes it on the simulated CPU, collecting HPC events, per-block
//!    memory accesses, and timestamps ([`sca_cpu`]);
//! 2. builds its CFG ([`sca_cfg`]) and identifies *attack-relevant* basic
//!    blocks — nonzero HPC value, then cache-set-overlap filtering
//!    ([`modeling`]);
//! 3. connects the relevant blocks into an *attack-relevant graph* with
//!    the most-probable attack paths (Algorithm 1: back-edge removal, path
//!    scoring by mean HPC, maximum spanning tree, path restoration);
//! 4. enhances each block with a *cache state transition* (CST) measured
//!    by replaying its accesses in a prefilled cache simulator, and
//!    flattens the graph by first-execution timestamp into a **CST-BBS**
//!    ([`CstBbs`]);
//! 5. compares CST-BBSes with dynamic time warping over a per-step
//!    distance that averages normalized-Levenshtein instruction distance
//!    and cache-state-pair distance ([`similarity`]);
//! 6. classifies the program as the attack family of the best-matching
//!    PoC model when the similarity score clears a threshold (45% by
//!    default), else benign ([`Detector`]).
//!
//! ```no_run
//! use scaguard::{Detector, ModelingConfig, ModelRepository};
//! use sca_attacks::poc::{self, PocParams};
//! use sca_attacks::AttackFamily;
//!
//! # fn main() -> Result<(), scaguard::ModelError> {
//! let cfg = ModelingConfig::default();
//! let mut repo = ModelRepository::new();
//! for family in AttackFamily::ALL {
//!     let poc = poc::representative(family, &PocParams::default());
//!     repo.add_poc(family, &poc.program, &poc.victim, &cfg)?;
//! }
//! let detector = Detector::new(repo, 0.45).expect("threshold in range");
//! let target = poc::flush_reload_mastik(&PocParams::default());
//! let detection = detector.classify(&target.program, &target.victim, &cfg)?;
//! assert!(detection.is_attack());
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod engine;
pub mod index;
pub mod modeling;
pub mod persist;
pub mod shard;
pub mod similarity;
pub mod stream;

mod cst;
mod detector;

pub use builder::{BuilderStats, ModelBuilder, ModelKey};
pub use cst::{Cst, CstBbs, CstStep};
pub use detector::{
    detection_json, Detection, Detector, EntryScore, InvalidThreshold, ModelRepository, RepoEntry,
};
pub use engine::{
    Bounded, DeadlineExceeded, EngineStats, PrefixDtw, PreparedModel, SimilarityEngine,
};
pub use index::{repo_fingerprint, IndexConfig, IndexMismatch, QueryContext, RepoIndex};
pub use modeling::{
    build_model, build_models, model_from_blocks, ModelError, ModelingConfig, ModelingOutcome,
};
pub use persist::{
    index_sidecar_path, load_index, load_model_cache, load_repository, model_text, save_index,
    save_model_cache, save_repository, LoadRepoError,
};
pub use shard::{Shard, ShardedDetector};
pub use similarity::{
    cst_distance, dtw, dtw_with_path, explain_similarity, levenshtein, similarity_score, Alignment,
};
pub use stream::{Alarm, StreamConfig, StreamSession, StreamUpdate, StreamingModeler};
