//! Attack behavior modeling (Section III-A): attack-relevant BB
//! identification, attack-relevant graph construction (Algorithm 1), CST
//! measurement, and flattening into a CST-BBS.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sca_cache::{Cache, CacheConfig, CacheStats, Owner};
use sca_cfg::{enumerate_paths, max_spanning_tree, remove_back_edges, BlockId, Cfg, WeightedEdge};
use sca_cpu::{CpuConfig, Machine, RunError, Trace, Victim};
use sca_isa::{normalize_inst, Inst, Program};

use crate::cst::{Cst, CstBbs, CstStep};

/// A large-enough path weight standing in for the paper's `MAX` (the value
/// given to directly-connected relevant-block pairs).
const MAX_WEIGHT: f64 = 1e18;

/// Configuration of the modeling pipeline.
#[derive(Debug, Clone)]
pub struct ModelingConfig {
    /// Simulated-CPU configuration used to collect runtime data.
    pub cpu: CpuConfig,
    /// Cap on enumerated paths per relevant-block pair (Algorithm 1 path
    /// enumeration can be exponential in pathological CFGs).
    pub path_cap: usize,
    /// Geometry of the CST-replay cache simulator.
    ///
    /// Deliberately *small* (the paper replays blocks through a compact
    /// reference cache simulator, not the full LLC): a basic block touches
    /// tens of lines, so occupancy changes are only measurable against a
    /// cache of comparable capacity. Defaults to 16 sets × 4 ways (64
    /// lines).
    pub cst_cache: CacheConfig,
}

impl Default for ModelingConfig {
    fn default() -> ModelingConfig {
        ModelingConfig {
            cst_cache: CacheConfig::new(16, 4, 64),
            cpu: CpuConfig::default(),
            path_cap: 64,
        }
    }
}

/// Errors from [`build_model`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The program failed to execute.
    Run(RunError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Run(e) => write!(f, "trace collection failed: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Run(e) => Some(e),
        }
    }
}

impl From<RunError> for ModelError {
    fn from(e: RunError) -> ModelError {
        ModelError::Run(e)
    }
}

/// Everything the modeling pipeline produces. The [`CstBbs`] is the model
/// used for detection; the intermediate artifacts are exposed for the
/// Table-IV accuracy evaluation and for ablation studies
/// (C-INTERMEDIATE: callers get the intermediate results for free).
#[derive(Debug, Clone)]
pub struct ModelingOutcome {
    /// The attack behavior model.
    pub cst_bbs: CstBbs,
    /// The CFG of the program.
    pub cfg: Cfg,
    /// Blocks with nonzero HPC value (after identification step 1).
    pub potential_bbs: Vec<BlockId>,
    /// Blocks surviving the cache-set-overlap filter (step 2).
    pub overlap_bbs: Vec<BlockId>,
    /// All nodes of the attack-relevant graph (the identified
    /// attack-relevant blocks, #IAB in Table IV).
    pub relevant_bbs: Vec<BlockId>,
    /// Edges of the attack-relevant graph.
    pub relevant_edges: Vec<(BlockId, BlockId)>,
    /// The execution trace the model was built from.
    pub trace: Trace,
}

impl ModelingOutcome {
    /// Ground-truth attack-relevant blocks: blocks containing at least one
    /// generator-tagged instruction (#TAB in Table IV).
    pub fn ground_truth_bbs(program: &Program, cfg: &Cfg) -> BTreeSet<BlockId> {
        program.tags().map(|(i, _)| cfg.block_of_inst(i)).collect()
    }
}

/// Per-block HPC value: the sum over the block's instruction addresses of
/// the 11 counted Table-I events (Section III-A.1).
fn block_hpc_values(program: &Program, cfg: &Cfg, trace: &Trace) -> Vec<u64> {
    cfg.blocks()
        .iter()
        .map(|b| b.inst_addrs(program).map(|a| trace.hpc_value_at(a)).sum())
        .collect()
}

/// Per-block accessed LLC set indices (including flushed addresses).
fn block_sets(
    program: &Program,
    cfg: &Cfg,
    trace: &Trace,
    llc: &CacheConfig,
) -> Vec<BTreeSet<usize>> {
    cfg.blocks()
        .iter()
        .map(|b| {
            b.inst_addrs(program)
                .flat_map(|a| trace.accesses_at(a).iter().map(|&m| llc.set_index(m)))
                .collect()
        })
        .collect()
}

/// Everything `build_model` computes *before* CST replay: the trace and
/// the attack-relevant graph. This stage depends on the program, the
/// victim, the CPU configuration, and the path cap — but **not** on the
/// CST-replay cache geometry — so [`crate::builder::ModelBuilder`] caches
/// it separately and reuses it across configs that differ only in
/// `cst_cache` (e.g. the replay-policy ablations).
#[derive(Debug, Clone)]
pub(crate) struct TraceGraph {
    pub(crate) cfg: Cfg,
    pub(crate) trace: Trace,
    pub(crate) potential: Vec<BlockId>,
    pub(crate) overlap: Vec<BlockId>,
    pub(crate) relevant: Vec<BlockId>,
    pub(crate) edges: Vec<(BlockId, BlockId)>,
}

/// Build the attack behavior model of `program` run against `victim`.
///
/// # Errors
///
/// Returns [`ModelError::Run`] if trace collection fails (e.g. the program
/// is empty). A program with *no* attack-relevant blocks is not an error;
/// it yields an empty [`CstBbs`], which no attack model resembles.
pub fn build_model(
    program: &Program,
    victim: &Victim,
    config: &ModelingConfig,
) -> Result<ModelingOutcome, ModelError> {
    let tg = collect_and_graph(program, victim, config)?;
    Ok(finish_model(program, config, &tg, None))
}

/// Steps 0–5 of the pipeline: execute, collect, identify relevant blocks,
/// and construct the attack-relevant graph (Algorithm 1).
pub(crate) fn collect_and_graph(
    program: &Program,
    victim: &Victim,
    config: &ModelingConfig,
) -> Result<TraceGraph, ModelError> {
    // Step 0: runtime data collection (HPC + PT substitutes). The machine
    // itself emits the `pipeline.execute` span.
    let mut machine = Machine::new(config.cpu.clone());
    let trace = machine.run(program, victim)?;
    Ok(graph_from_trace(program, trace, config))
}

/// Steps 1–5 of the pipeline on an already-collected trace: per-block
/// aggregation, relevant-block identification, and attack-relevant graph
/// construction (Algorithm 1). Pure in `(program, trace, config)`, so a
/// trace snapshotted from an in-progress [`sca_cpu::Execution`] yields
/// exactly the graph a batch run cut off at the same prefix yields —
/// the foundation of [`crate::stream::StreamingModeler`]'s prefix
/// identity.
pub(crate) fn graph_from_trace(
    program: &Program,
    trace: Trace,
    config: &ModelingConfig,
) -> TraceGraph {
    // `pipeline.collect` covers turning the raw trace into per-block
    // aggregates.
    let (cfg, hpc, sets) = {
        let mut sp = sca_telemetry::span("pipeline.collect");
        let cfg = Cfg::build(program);
        let hpc = block_hpc_values(program, &cfg, &trace);
        let sets = block_sets(program, &cfg, &trace, &config.cpu.hierarchy.llc);
        sp.attr("blocks", cfg.len());
        sp.attr("hpc_total", trace.totals.hpc_value());
        sp.attr("set_trace_len", trace.set_trace.len());
        (cfg, hpc, sets)
    };

    // Steps 1-2: relevant-BB identification.
    let (potential, overlap) = {
        let mut sp = sca_telemetry::span("pipeline.model.relevant_bb");

        // Step 1: potential attack-relevant blocks — nonzero HPC value.
        let potential: Vec<BlockId> = cfg.ids().filter(|b| hpc[b.0] > 0).collect();

        // Step 2: cache-set-overlap filtering — keep only blocks touching a
        // cache set that at least one *other* block also touches.
        let mut set_users: HashMap<usize, u32> = HashMap::new();
        for b in &potential {
            for &s in &sets[b.0] {
                *set_users.entry(s).or_insert(0) += 1;
            }
        }
        let overlap: Vec<BlockId> = potential
            .iter()
            .copied()
            .filter(|b| sets[b.0].iter().any(|s| set_users[s] >= 2))
            .collect();

        sp.attr("potential", potential.len());
        sp.attr("kept", overlap.len());
        sp.attr("dropped", cfg.len() - overlap.len());
        (potential, overlap)
    };

    // Steps 3-5: Algorithm 1 — attack-relevant graph construction.
    let (relevant, edges) = {
        let mut sp = sca_telemetry::span("pipeline.model.graph");
        let (relevant, edges) = attack_relevant_graph(&cfg, &hpc, &overlap, config.path_cap);
        sp.attr("nodes", relevant.len());
        sp.attr("edges", edges.len());
        (relevant, edges)
    };

    TraceGraph {
        cfg,
        trace,
        potential,
        overlap,
        relevant,
        edges,
    }
}

/// Steps 6-7: CST measurement per relevant block and flattening by
/// first-execution timestamp (ties and never-executed restored blocks
/// fall back to address order). Pure in `(program, config.cst_cache, tg)`,
/// so a cached [`TraceGraph`] finishes into an outcome byte-identical to
/// the uncached path.
pub(crate) fn finish_model(
    program: &Program,
    config: &ModelingConfig,
    tg: &TraceGraph,
    memo: Option<&ReplayMemo>,
) -> ModelingOutcome {
    let cst_bbs = model_from_blocks_memo(
        program,
        &tg.cfg,
        &tg.trace,
        &tg.relevant,
        &config.cst_cache,
        memo,
    );
    ModelingOutcome {
        cst_bbs,
        cfg: tg.cfg.clone(),
        potential_bbs: tg.potential.clone(),
        overlap_bbs: tg.overlap.clone(),
        relevant_bbs: tg.relevant.clone(),
        relevant_edges: tg.edges.clone(),
        trace: tg.trace.clone(),
    }
}

/// Algorithm 1: build the attack-relevant graph.
///
/// Returns the graph's nodes (sorted) and edges. Nodes include every block
/// in `relevant` plus any block on a restored most-probable path between
/// two relevant blocks.
fn attack_relevant_graph(
    cfg: &Cfg,
    hpc: &[u64],
    relevant: &[BlockId],
    path_cap: usize,
) -> (Vec<BlockId>, Vec<(BlockId, BlockId)>) {
    if relevant.is_empty() {
        return (Vec::new(), Vec::new());
    }
    if relevant.len() == 1 {
        return (vec![relevant[0]], Vec::new());
    }

    // Line 1: make the CFG loop-free.
    let dag = {
        let _sp = sca_telemetry::span("pipeline.model.graph.back_edges");
        remove_back_edges(cfg)
    };
    let relevant_set: HashSet<BlockId> = relevant.iter().copied().collect();

    // Lines 3-5: for each ordered pair, enumerate paths avoiding other
    // relevant blocks and score them by mean intermediate HPC value.
    let mut paths: Vec<Vec<BlockId>> = Vec::new();
    let mut edges: Vec<WeightedEdge> = Vec::new();
    for &vi in relevant {
        for &vj in relevant {
            if vi == vj {
                continue;
            }
            for p in enumerate_paths(&dag, vi, vj, &relevant_set, path_cap) {
                let weight = if p.len() == 2 {
                    MAX_WEIGHT
                } else {
                    let inner = &p[1..p.len() - 1];
                    inner.iter().map(|b| hpc[b.0] as f64).sum::<f64>() / inner.len() as f64
                };
                edges.push(WeightedEdge {
                    a: vi,
                    b: vj,
                    weight,
                    payload: paths.len(),
                });
                paths.push(p);
            }
        }
    }

    // Line 7: maximum spanning tree over the weighted path graph.
    let chosen = {
        let mut sp = sca_telemetry::span("pipeline.model.graph.mst");
        sp.attr("candidate_edges", edges.len());
        max_spanning_tree(cfg.len(), &edges)
    };

    // Line 8+: restore the labeled paths of the chosen edges.
    let mut nodes: BTreeSet<BlockId> = relevant.iter().copied().collect();
    let mut graph_edges: BTreeSet<(BlockId, BlockId)> = BTreeSet::new();
    for idx in chosen {
        let p = &paths[edges[idx].payload];
        for pair in p.windows(2) {
            nodes.insert(pair[0]);
            nodes.insert(pair[1]);
            graph_edges.insert((pair[0], pair[1]));
        }
    }

    (
        nodes.into_iter().collect(),
        graph_edges.into_iter().collect(),
    )
}

/// Measure the CST of one block (Section III-A.3): start from a cache full
/// of non-attacker data (`IO = 1, AO = 0`), feed the block's accessed
/// memory addresses, observe the occupancy change.
fn measure_cst(
    insts_with_accesses: &[(Inst, Vec<u64>)],
    cache_cfg: &CacheConfig,
) -> (Cst, CacheStats) {
    let mut cache = Cache::new(*cache_cfg);
    cache.prefill(Owner::Other);
    cache.reset_stats();
    let before = cache.state();
    for (inst, accesses) in insts_with_accesses {
        match inst {
            Inst::Clflush { .. } => {
                for &a in accesses {
                    cache.displace(a);
                }
            }
            Inst::Load { .. } | Inst::Store { .. } => {
                for &a in accesses {
                    cache.access(a, Owner::Attacker, matches!(inst, Inst::Store { .. }));
                }
            }
            _ => {}
        }
    }
    let after = cache.state();
    (Cst { before, after }, cache.stats())
}

/// A memo of per-block CST replays, keyed by the replayed access sequence
/// and the full replay-cache configuration.
///
/// [`measure_cst`] is a pure function of (a) the per-instruction kind and
/// access list it replays and (b) the replay cache's configuration
/// (geometry, policy, seed, partitioning) — nothing else reaches the
/// simulator. The memo key is a byte-exact encoding of both, so a hit
/// returns the identical `(Cst, CacheStats)` the replay would have
/// produced. Blocks repeat heavily across mutated variants of the same
/// PoC, which is where the savings come from. Collisions are handled by
/// comparing the full key bytes, never the hash alone.
#[derive(Debug, Default)]
pub(crate) struct ReplayMemo {
    map: Mutex<HashMap<u64, MemoBucket>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// One hash bucket: (full key bytes, memoized replay result) pairs.
type MemoBucket = Vec<(Vec<u8>, (Cst, CacheStats))>;

impl ReplayMemo {
    /// Replays served from the memo / replays actually simulated.
    pub(crate) fn counts(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The byte-exact memo key: replay-cache configuration, then one
    /// record per instruction (kind tag + access addresses). Only the
    /// fields [`measure_cst`] actually reads are encoded — and all of
    /// them are.
    fn key(insts_with_accesses: &[(Inst, Vec<u64>)], cache_cfg: &CacheConfig) -> Vec<u8> {
        let mut key = Vec::with_capacity(64 + insts_with_accesses.len() * 16);
        key.extend_from_slice(&(cache_cfg.sets as u64).to_le_bytes());
        key.extend_from_slice(&(cache_cfg.ways as u64).to_le_bytes());
        key.extend_from_slice(&cache_cfg.line_size.to_le_bytes());
        key.push(cache_cfg.policy as u8);
        key.extend_from_slice(&cache_cfg.seed.to_le_bytes());
        key.extend_from_slice(&(cache_cfg.reserved_victim_ways as u64).to_le_bytes());
        for (inst, accesses) in insts_with_accesses {
            // The replay distinguishes exactly four instruction shapes.
            key.push(match inst {
                Inst::Clflush { .. } => 1,
                Inst::Load { .. } => 2,
                Inst::Store { .. } => 3,
                _ => 0,
            });
            key.extend_from_slice(&(accesses.len() as u64).to_le_bytes());
            for a in accesses {
                key.extend_from_slice(&a.to_le_bytes());
            }
        }
        key
    }

    /// Measure (or recall) one block's CST; the flag says whether the
    /// memo served it.
    fn measure(
        &self,
        insts_with_accesses: &[(Inst, Vec<u64>)],
        cache_cfg: &CacheConfig,
    ) -> ((Cst, CacheStats), bool) {
        let key = ReplayMemo::key(insts_with_accesses, cache_cfg);
        let hash = fnv1a(&key);
        {
            let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(bucket) = map.get(&hash) {
                if let Some((_, v)) = bucket.iter().find(|(k, _)| *k == key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (*v, true);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = measure_cst(insts_with_accesses, cache_cfg);
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = map.entry(hash).or_default();
        if !bucket.iter().any(|(k, _)| *k == key) {
            bucket.push((key, v));
        }
        (v, false)
    }
}

/// FNV-1a over raw bytes: stable across runs, platforms, and Rust
/// versions (unlike [`std::hash::DefaultHasher`], whose output is
/// explicitly unspecified), which on-disk cache addressing needs.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Build a CST-BBS directly from a chosen block set, bypassing
/// Algorithm 1's graph construction (used by ablation studies comparing
/// the attack-relevant graph against naive block selections).
pub fn model_from_blocks(
    program: &Program,
    cfg: &Cfg,
    trace: &Trace,
    blocks: &[BlockId],
    cst_cache: &CacheConfig,
) -> CstBbs {
    model_from_blocks_memo(program, cfg, trace, blocks, cst_cache, None)
}

/// [`model_from_blocks`] with an optional replay memo shared across
/// models (the [`crate::builder::ModelBuilder`] passes one in).
pub(crate) fn model_from_blocks_memo(
    program: &Program,
    cfg: &Cfg,
    trace: &Trace,
    blocks: &[BlockId],
    cst_cache: &CacheConfig,
    memo: Option<&ReplayMemo>,
) -> CstBbs {
    let mut sp = sca_telemetry::span("pipeline.model.cst_replay");
    let mut stats = CacheStats::default();
    // Addresses fed through loads/stores, counted independently of the
    // replay cache so its hit+miss bookkeeping is cross-checkable.
    let mut replayed = 0u64;
    let mut memoized = 0u64;
    let mut steps = Vec::with_capacity(blocks.len());
    for &b in blocks {
        let block = cfg.block(b);
        let insts = &program.insts()[block.insts.clone()];
        let accesses: Vec<(Inst, Vec<u64>)> = block
            .insts
            .clone()
            .map(|idx| {
                let addr = program.addr_of(idx);
                (program.insts()[idx], trace.accesses_at(addr).to_vec())
            })
            .collect();
        replayed += accesses
            .iter()
            .filter(|(i, _)| matches!(i, Inst::Load { .. } | Inst::Store { .. }))
            .map(|(_, a)| a.len() as u64)
            .sum::<u64>();
        let (cst, block_stats) = match memo {
            Some(m) => {
                let (v, hit) = m.measure(&accesses, cst_cache);
                memoized += u64::from(hit);
                v
            }
            None => measure_cst(&accesses, cst_cache),
        };
        stats.merge(&block_stats);
        let first_seen = block
            .inst_addrs(program)
            .filter_map(|a| trace.first_seen_at(a))
            .min()
            .unwrap_or(u64::MAX);
        steps.push(CstStep {
            bb_addr: block.start_addr(program),
            norm_insts: insts.iter().map(normalize_inst).collect(),
            cst,
            first_seen,
        });
    }
    steps.sort_by_key(|s| (s.first_seen, s.bb_addr));
    if sp.is_recording() {
        sp.attr("blocks", blocks.len());
        sp.attr("cache_hits", stats.hits);
        sp.attr("cache_misses", stats.misses);
        sp.attr("cache_flushes", stats.flushes);
        sp.attr("replayed_accesses", replayed);
        sp.attr("replays_memoized", memoized);
        sca_telemetry::counter("cst_replay.cache_hits", stats.hits);
        sca_telemetry::counter("cst_replay.cache_misses", stats.misses);
        sca_telemetry::counter("cst_replay.cache_flushes", stats.flushes);
        sca_telemetry::counter("cst.replays_memoized", memoized);
    }
    CstBbs::new(steps)
}

/// Summary counters for the Table-IV evaluation of one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BbIdentificationStats {
    /// Total basic blocks (#BB).
    pub total: usize,
    /// Ground-truth attack-relevant blocks (#TAB).
    pub ground_truth: usize,
    /// Identified attack-relevant blocks (#IAB).
    pub identified: usize,
    /// Ground-truth blocks among the identified (#ITAB).
    pub identified_truth: usize,
}

impl BbIdentificationStats {
    /// Compute the Table-IV counters for one modeled program.
    pub fn compute(program: &Program, outcome: &ModelingOutcome) -> BbIdentificationStats {
        let truth = ModelingOutcome::ground_truth_bbs(program, &outcome.cfg);
        let identified: BTreeSet<BlockId> = outcome.relevant_bbs.iter().copied().collect();
        BbIdentificationStats {
            total: outcome.cfg.len(),
            ground_truth: truth.len(),
            identified: identified.len(),
            identified_truth: truth.intersection(&identified).count(),
        }
    }

    /// Identification accuracy `#ITAB / #TAB` (1.0 when there is no ground
    /// truth).
    pub fn accuracy(&self) -> f64 {
        if self.ground_truth == 0 {
            1.0
        } else {
            self.identified_truth as f64 / self.ground_truth as f64
        }
    }

    /// Merge counters across programs (for per-family rows).
    pub fn merge(&mut self, other: &BbIdentificationStats) {
        self.total += other.total;
        self.ground_truth += other.ground_truth;
        self.identified += other.identified;
        self.identified_truth += other.identified_truth;
    }
}

/// Convenience: build models for a whole batch serially, returning
/// name-keyed **per-program** results — one failing variant no longer
/// aborts the rest of the batch; each program carries its own
/// `Result`. This is the serial reference the parallel
/// [`crate::builder::ModelBuilder`] is byte-exactness-checked against.
pub fn build_models<'a>(
    programs: impl IntoIterator<Item = (&'a Program, &'a Victim)>,
    config: &ModelingConfig,
) -> BTreeMap<String, Result<ModelingOutcome, ModelError>> {
    programs
        .into_iter()
        .map(|(p, v)| (p.name().to_string(), build_model(p, v, config)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_attacks::benign::{self, Kind};
    use sca_attacks::poc::{self, PocParams};

    fn model_of(s: &sca_attacks::Sample) -> ModelingOutcome {
        build_model(&s.program, &s.victim, &ModelingConfig::default()).expect("model")
    }

    #[test]
    fn fr_model_is_nonempty_and_covers_ground_truth() {
        let s = poc::flush_reload_iaik(&PocParams::default());
        let out = model_of(&s);
        assert!(!out.cst_bbs.is_empty());
        let stats = BbIdentificationStats::compute(&s.program, &out);
        assert!(stats.ground_truth > 0);
        assert!(
            stats.accuracy() >= 0.8,
            "ground-truth coverage too low: {stats:?}"
        );
        assert!(
            stats.identified < stats.total,
            "some irrelevant blocks must be eliminated: {stats:?}"
        );
    }

    #[test]
    fn identification_shrinks_block_set_progressively() {
        let s = poc::prime_probe_iaik(&PocParams::default());
        let out = model_of(&s);
        assert!(out.potential_bbs.len() <= out.cfg.len());
        assert!(out.overlap_bbs.len() <= out.potential_bbs.len());
    }

    #[test]
    fn flush_blocks_have_io_decreasing_cst() {
        let s = poc::flush_reload_iaik(&PocParams::default());
        let out = model_of(&s);
        // at least one step must show IO decreasing (the flush step)
        assert!(
            out.cst_bbs
                .steps()
                .iter()
                .any(|st| st.cst.after.io < st.cst.before.io),
            "no step decreases IO"
        );
        // and at least one step must show AO increasing (the reload step)
        assert!(
            out.cst_bbs
                .steps()
                .iter()
                .any(|st| st.cst.after.ao > st.cst.before.ao),
            "no step increases AO"
        );
    }

    #[test]
    fn steps_are_ordered_by_first_execution() {
        let s = poc::flush_reload_iaik(&PocParams::default());
        let out = model_of(&s);
        let times: Vec<u64> = out.cst_bbs.steps().iter().map(|s| s.first_seen).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn modeling_is_deterministic() {
        let s = poc::spectre_fr_v1(&PocParams::default());
        let a = model_of(&s);
        let b = model_of(&s);
        assert_eq!(a.cst_bbs, b.cst_bbs);
    }

    #[test]
    fn benign_programs_produce_smaller_or_dissimilar_models() {
        let s = benign::generate(Kind::Leetcode, 3);
        let out = build_model(&s.program, &s.victim, &ModelingConfig::default()).expect("model");
        // benign programs have no ground-truth tags
        let stats = BbIdentificationStats::compute(&s.program, &out);
        assert_eq!(stats.ground_truth, 0);
        assert_eq!(stats.accuracy(), 1.0);
    }

    #[test]
    fn relevant_graph_edges_connect_relevant_nodes() {
        let s = poc::flush_reload_iaik(&PocParams::default());
        let out = model_of(&s);
        let nodes: HashSet<BlockId> = out.relevant_bbs.iter().copied().collect();
        for (a, b) in &out.relevant_edges {
            assert!(nodes.contains(a) && nodes.contains(b));
        }
    }

    #[test]
    fn self_similarity_is_one() {
        let s = poc::flush_reload_iaik(&PocParams::default());
        let out = model_of(&s);
        assert_eq!(crate::similarity_score(&out.cst_bbs, &out.cst_bbs), 1.0);
    }

    #[test]
    fn empty_program_is_a_run_error() {
        let p = sca_isa::ProgramBuilder::new("e").build();
        let r = build_model(&p, &Victim::None, &ModelingConfig::default());
        assert!(matches!(r, Err(ModelError::Run(_))));
    }
}
