//! Similarity comparison of CST-BBSes (Section III-B).
//!
//! The per-step distance between two CSTs averages two components:
//!
//! * `D_IS` — the normalized Levenshtein distance between the blocks'
//!   imm/mem/reg-normalized instruction sequences;
//! * `D_CSP` — the difference of the cache-change magnitudes of the two
//!   transitions, `|P_2 - P_1|` with `P_i = (|AO_i-AO'_i| + |IO_i-IO'_i|)/2`.
//!
//! The sequence distance is computed by dynamic time warping with this
//! per-step distance, and mapped to a similarity score in `[0, 1]` by
//! `1 / (D + 1)`.

use crate::cst::{CstBbs, CstStep};

/// Levenshtein (edit) distance between two sequences.
///
/// Identical sequences short-circuit to 0, and a shared prefix/suffix is
/// trimmed before the `O(p·q)` dynamic program runs — edits inside the
/// differing middle can never profit from touching matching ends, so the
/// distance of the trimmed middle equals the distance of the full pair.
///
/// ```
/// assert_eq!(scaguard::levenshtein(b"kitten", b"sitting"), 3);
/// assert_eq!(scaguard::levenshtein(b"prefix-x-suffix", b"prefix-y-suffix"), 1);
/// ```
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a == b {
        return 0;
    }
    // Trim the common prefix and suffix; only the middle needs the DP.
    let prefix = a.iter().zip(b).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[prefix..], &b[prefix..]);
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    let (a, b) = (&a[..a.len() - suffix], &b[..b.len() - suffix]);
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, x) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, y) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(x != y);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized instruction-sequence distance
/// `D_IS = Levenshtein(IS1, IS2) / max(len(IS1), len(IS2))`, in `[0, 1]`.
/// Two empty sequences have distance 0.
pub fn instruction_distance(a: &CstStep, b: &CstStep) -> f64 {
    let denom = a.norm_insts.len().max(b.norm_insts.len());
    if denom == 0 {
        return 0.0;
    }
    levenshtein(&a.norm_insts, &b.norm_insts) as f64 / denom as f64
}

/// Cache-state-pair distance `D_CSP = |P_2 - P_1|`, in `[0, 1]`.
pub fn csp_distance(a: &CstStep, b: &CstStep) -> f64 {
    (a.cst.change() - b.cst.change()).abs()
}

/// The combined per-step distance
/// `Distance(τ1, τ2) = (D_IS + D_CSP) / 2`, in `[0, 1]`.
pub fn cst_distance(a: &CstStep, b: &CstStep) -> f64 {
    (instruction_distance(a, b) + csp_distance(a, b)) / 2.0
}

/// Dynamic time warping distance between two step sequences under `dist`.
///
/// Standard DTW: `D(i,j) = dist(i,j) + min(D(i-1,j), D(i,j-1), D(i-1,j-1))`.
/// If exactly one sequence is empty, every step of the other is unmatched
/// at the maximum per-step cost (1.0); two empty sequences have distance 0.
pub fn dtw<T>(a: &[T], b: &[T], mut dist: impl FnMut(&T, &T) -> f64) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return (a.len() + b.len()) as f64;
    }
    let m = b.len();
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for x in a {
        cur[0] = f64::INFINITY;
        for (j, y) in b.iter().enumerate() {
            let d = dist(x, y);
            let best = prev[j].min(prev[j + 1]).min(cur[j]);
            cur[j + 1] = d + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// The DTW distance between two CST-BBS models under [`cst_distance`].
pub fn model_distance(a: &CstBbs, b: &CstBbs) -> f64 {
    dtw(a.steps(), b.steps(), cst_distance)
}

/// One matched pair on the optimal DTW warping path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alignment {
    /// Step index in the first sequence.
    pub a: usize,
    /// Step index in the second sequence.
    pub b: usize,
    /// The per-step distance paid at this pair.
    pub cost: f64,
}

/// Compute the optimal DTW warping path alongside the distance —
/// the explanation of *which* blocks matched which.
///
/// Returns `(distance, path)`; the path is empty when either sequence is
/// empty (the distance then counts every unmatched step at cost 1).
///
/// ```
/// use scaguard::{dtw_with_path};
/// let d = |x: &f64, y: &f64| (x - y).abs();
/// let (dist, path) = dtw_with_path(&[1.0, 5.0], &[1.0, 1.0, 5.0], d);
/// assert_eq!(dist, 0.0);
/// assert_eq!(path.len(), 3);
/// assert_eq!((path[2].a, path[2].b), (1, 2));
/// let (dist, path) = dtw_with_path::<f64>(&[], &[], d);
/// assert_eq!(dist, 0.0);
/// assert!(path.is_empty());
/// ```
pub fn dtw_with_path<T>(
    a: &[T],
    b: &[T],
    mut dist: impl FnMut(&T, &T) -> f64,
) -> (f64, Vec<Alignment>) {
    if a.is_empty() && b.is_empty() {
        return (0.0, Vec::new());
    }
    if a.is_empty() || b.is_empty() {
        return ((a.len() + b.len()) as f64, Vec::new());
    }
    let (n, m) = (a.len(), b.len());
    let mut d = vec![f64::INFINITY; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    d[idx(0, 0)] = 0.0;
    let mut cost = vec![0.0; n * m];
    for (i, x) in a.iter().enumerate() {
        for (j, y) in b.iter().enumerate() {
            let c = dist(x, y);
            cost[i * m + j] = c;
            let best = d[idx(i, j)].min(d[idx(i, j + 1)]).min(d[idx(i + 1, j)]);
            d[idx(i + 1, j + 1)] = c + best;
        }
    }
    // Traceback from (n, m).
    let mut path = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push(Alignment {
            a: i - 1,
            b: j - 1,
            cost: cost[(i - 1) * m + (j - 1)],
        });
        let diag = d[idx(i - 1, j - 1)];
        let up = d[idx(i - 1, j)];
        let left = d[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    (d[idx(n, m)], path)
}

/// A human-readable explanation of a model comparison: the warping path
/// with per-pair costs and the blocks' leading instructions.
pub fn explain_similarity(target: &CstBbs, reference: &CstBbs) -> String {
    let (distance, path) = dtw_with_path(target.steps(), reference.steps(), cst_distance);
    let mut out = format!(
        "DTW distance {distance:.3} (similarity {:.2}%) over {} aligned pairs\n",
        100.0 / (distance + 1.0),
        path.len()
    );
    for p in &path {
        let ts = &target.steps()[p.a];
        let rs = &reference.steps()[p.b];
        let head = |s: &CstStep| {
            s.norm_insts
                .iter()
                .take(3)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        };
        out.push_str(&format!(
            "  target[{:>2}] {:#x} ({}) <-> ref[{:>2}] {:#x} ({})  cost {:.3}\n",
            p.a,
            ts.bb_addr,
            head(ts),
            p.b,
            rs.bb_addr,
            head(rs),
            p.cost
        ));
    }
    out
}

/// The similarity score between two models: `1 / (D + 1)` in `[0, 1]`,
/// larger meaning more similar (Section III-B.2).
///
/// ```
/// use scaguard::CstBbs;
/// let empty = CstBbs::default();
/// assert_eq!(scaguard::similarity_score(&empty, &empty), 1.0);
/// ```
pub fn similarity_score(a: &CstBbs, b: &CstBbs) -> f64 {
    1.0 / (model_distance(a, b) + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::Cst;
    use sca_cache::CacheState;
    use sca_isa::{normalize_inst, Inst, MemRef, Reg};

    fn step(insts: &[Inst], ao_after: f64) -> CstStep {
        CstStep {
            bb_addr: 0,
            norm_insts: insts.iter().map(normalize_inst).collect(),
            cst: Cst {
                before: CacheState::full_other(),
                after: CacheState::new(ao_after, 1.0 - ao_after),
            },
            first_seen: 0,
        }
    }

    fn load() -> Inst {
        Inst::Load {
            dst: Reg::R1,
            addr: MemRef::abs(0x1000),
        }
    }

    fn flush() -> Inst {
        Inst::Clflush {
            addr: MemRef::abs(0x1000),
        }
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein(b"abc", b"abc"), 0);
        assert_eq!(levenshtein(b"abc", b""), 3);
        assert_eq!(levenshtein(b"", b"xy"), 2);
        assert_eq!(levenshtein(b"abc", b"axc"), 1);
        assert_eq!(levenshtein(b"abc", b"cab"), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(
            levenshtein(b"kitten", b"sitting"),
            levenshtein(b"sitting", b"kitten")
        );
    }

    #[test]
    fn identical_steps_have_zero_distance() {
        let a = step(&[load(), flush()], 0.2);
        assert_eq!(cst_distance(&a, &a), 0.0);
    }

    #[test]
    fn instruction_distance_is_normalized() {
        let a = step(&[load(), load(), load(), load()], 0.0);
        let b = step(&[flush(), flush(), flush(), flush()], 0.0);
        assert_eq!(instruction_distance(&a, &b), 1.0);
        let c = step(&[load(), load(), flush(), flush()], 0.0);
        assert_eq!(instruction_distance(&a, &c), 0.5);
    }

    #[test]
    fn csp_distance_compares_change_magnitudes() {
        let a = step(&[load()], 0.5); // change 0.5
        let b = step(&[load()], 0.1); // change 0.1
        assert!((csp_distance(&a, &b) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn register_variants_are_indistinguishable_after_normalization() {
        let a = step(
            &[Inst::Load {
                dst: Reg::R1,
                addr: MemRef::base(Reg::R2),
            }],
            0.3,
        );
        let b = step(
            &[Inst::Load {
                dst: Reg::R9,
                addr: MemRef::base_disp(Reg::R4, 0x40),
            }],
            0.3,
        );
        assert_eq!(cst_distance(&a, &b), 0.0);
    }

    #[test]
    fn dtw_identity_and_symmetry() {
        let xs = [1.0f64, 2.0, 3.0];
        let ys = [1.0f64, 2.5, 3.0];
        let d = |a: &f64, b: &f64| (a - b).abs();
        assert_eq!(dtw(&xs, &xs, d), 0.0);
        assert!((dtw(&xs, &ys, d) - dtw(&ys, &xs, d)).abs() < 1e-12);
        assert!(dtw(&xs, &ys, d) >= 0.0);
    }

    #[test]
    fn dtw_warps_over_repeats() {
        // a stretched version of the same pattern should be cheap
        let a = [1.0f64, 5.0, 1.0];
        let stretched = [1.0f64, 1.0, 5.0, 5.0, 5.0, 1.0];
        let shuffled = [5.0f64, 1.0, 5.0];
        let d = |x: &f64, y: &f64| (x - y).abs();
        assert!(dtw(&a, &stretched, d) < dtw(&a, &shuffled, d));
    }

    #[test]
    fn dtw_empty_cases() {
        let d = |x: &f64, y: &f64| (x - y).abs();
        assert_eq!(dtw::<f64>(&[], &[], d), 0.0);
        assert_eq!(dtw(&[], &[1.0, 2.0], d), 2.0);
        assert_eq!(dtw(&[1.0], &[], d), 1.0);
    }

    #[test]
    fn dtw_path_matches_distance_and_is_monotone() {
        let d = |x: &f64, y: &f64| (x - y).abs();
        let a = [1.0, 5.0, 2.0, 8.0];
        let b = [1.0, 1.0, 5.0, 2.5, 8.0];
        let (dist, path) = dtw_with_path(&a, &b, d);
        assert!(
            (dist - dtw(&a, &b, d)).abs() < 1e-12,
            "path distance agrees"
        );
        // path cost sums to the distance
        let sum: f64 = path.iter().map(|p| p.cost).sum();
        assert!((sum - dist).abs() < 1e-9);
        // endpoints and monotonicity
        assert_eq!((path[0].a, path[0].b), (0, 0));
        assert_eq!(
            (path.last().unwrap().a, path.last().unwrap().b),
            (a.len() - 1, b.len() - 1)
        );
        for w in path.windows(2) {
            assert!(w[1].a >= w[0].a && w[1].b >= w[0].b);
            assert!(w[1].a - w[0].a <= 1 && w[1].b - w[0].b <= 1);
        }
    }

    #[test]
    fn dtw_path_empty_cases() {
        let d = |x: &f64, y: &f64| (x - y).abs();
        let (dist, path) = dtw_with_path::<f64>(&[], &[], d);
        assert_eq!(dist, 0.0);
        assert!(path.is_empty());
        let (dist, path) = dtw_with_path(&[], &[1.0, 2.0], d);
        assert_eq!(dist, 2.0);
        assert!(path.is_empty());
    }

    #[test]
    fn explanation_mentions_every_aligned_pair() {
        let a: CstBbs = vec![step(&[load(), flush()], 0.2); 3].into_iter().collect();
        let b: CstBbs = vec![step(&[load(), flush()], 0.2); 2].into_iter().collect();
        let text = explain_similarity(&a, &b);
        assert!(text.contains("DTW distance"));
        assert!(text.contains("target[ 2]"), "{text}");
        assert!(text.contains("ld reg, mem"));
    }

    #[test]
    fn similarity_score_range_and_ordering() {
        let a: CstBbs = vec![step(&[load(), flush()], 0.2); 4].into_iter().collect();
        let near: CstBbs = vec![step(&[load(), flush()], 0.25); 4]
            .into_iter()
            .collect();
        let far: CstBbs = vec![step(&[Inst::Nop, Inst::Nop, Inst::Nop], 0.9); 9]
            .into_iter()
            .collect();
        let self_sim = similarity_score(&a, &a);
        assert_eq!(self_sim, 1.0);
        let near_sim = similarity_score(&a, &near);
        let far_sim = similarity_score(&a, &far);
        assert!(near_sim > far_sim);
        assert!((0.0..=1.0).contains(&far_sim));
    }
}
