//! The model repository and the similarity-based detector/classifier
//! (Section III-B.3).
//!
//! Classification is powered by the [`crate::engine`] similarity engine:
//! the repository's models are prepared (interned) once per detector, a
//! scan threads the best distance seen so far through the entries so
//! later comparisons can be skipped by cheap lower bounds or abandoned
//! mid-DTW, and batch workloads fan out over a std-only worker pool
//! ([`Detector::classify_batch`]). The best score and verdict are always
//! bitwise identical to the naive full scan; only comparisons that
//! provably cannot win are cut short.
//!
//! A scan runs in two phases (DESIGN.md §15). **Phase 1** finds the best
//! entry: every entry gets the `O(log)` interval-envelope bound
//! ([`crate::engine::lb_interval`]) up front, then entries are visited —
//! in repository order, or cheapest-sort-key-first when a
//! [`RepoIndex`] is attached — through a cheapest-first cascade
//! (envelope → length bound → CSP envelope → pivot bound → early-abandoned
//! DTW) under the best-so-far cutoff; with an index, the scan *stops* at
//! the first sort key above the cutoff. **Phase 2** renders the per-entry
//! scores as a pure function of the target, the repository, and the best
//! distance — never of the visit order — which is what makes indexed,
//! linear, and parallel scans byte-identical.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sca_attacks::AttackFamily;
use sca_cpu::Victim;
use sca_isa::Program;
use sca_telemetry::Json;

use crate::builder::ModelBuilder;
use crate::cst::CstBbs;
use crate::engine::{
    lb_csp_envelope, lb_interval, lb_length, Bounded, DeadlineExceeded, EngineStats, PreparedModel,
    SimilarityEngine,
};
use crate::index::{IndexConfig, IndexMismatch, QueryContext, RepoIndex};
use crate::modeling::{build_model, ModelError, ModelingConfig};

/// One PoC model in the repository.
#[derive(Debug, Clone)]
pub struct RepoEntry {
    /// The attack family this PoC belongs to.
    pub family: AttackFamily,
    /// The PoC's name (e.g. `"FR-IAIK"`). Shared, so score rendering
    /// can label thousands of entries per scan without allocating.
    pub name: Arc<str>,
    /// Its attack behavior model.
    pub model: CstBbs,
}

/// A repository of attack behavior models built from PoCs of known attacks.
#[derive(Debug, Clone, Default)]
pub struct ModelRepository {
    entries: Vec<RepoEntry>,
}

impl ModelRepository {
    /// An empty repository.
    pub fn new() -> ModelRepository {
        ModelRepository::default()
    }

    /// Add a prebuilt model.
    pub fn add_model(&mut self, family: AttackFamily, name: impl Into<String>, model: CstBbs) {
        self.entries.push(RepoEntry {
            family,
            name: name.into().into(),
            model,
        });
    }

    /// Model a PoC program and add the result.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the modeling pipeline.
    pub fn add_poc(
        &mut self,
        family: AttackFamily,
        program: &Program,
        victim: &Victim,
        config: &ModelingConfig,
    ) -> Result<(), ModelError> {
        let outcome = build_model(program, victim, config)?;
        self.add_model(family, program.name(), outcome.cst_bbs);
        Ok(())
    }

    /// [`ModelRepository::add_poc`] through a [`ModelBuilder`], so
    /// repeated repository builds (eval rounds, warm disk caches) model
    /// each PoC exactly once.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the modeling pipeline.
    pub fn add_poc_with(
        &mut self,
        family: AttackFamily,
        program: &Program,
        victim: &Victim,
        builder: &ModelBuilder,
    ) -> Result<(), ModelError> {
        let model = builder.build_cst(program, victim)?;
        self.add_model(family, program.name(), (*model).clone());
        Ok(())
    }

    /// The stored entries.
    pub fn entries(&self) -> &[RepoEntry] {
        &self.entries
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Extend<RepoEntry> for ModelRepository {
    fn extend<I: IntoIterator<Item = RepoEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

/// One repository entry's similarity to a classified target.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryScore {
    /// The PoC's name (shared with the repository entry).
    pub poc: Arc<str>,
    /// The PoC's attack family.
    pub family: AttackFamily,
    /// The similarity score in `[0, 1]`. Exact when [`exact`] is set;
    /// otherwise an **upper bound**: the pruned scan proved the true
    /// score is at most this value without paying for the full
    /// comparison. An upper bound may exceed the best (exact) score —
    /// it only promises the true score is no higher, not that the entry
    /// came close.
    ///
    /// [`exact`]: EntryScore::exact
    pub score: f64,
    /// Whether [`score`] is the exact similarity (`true`) or the upper
    /// bound left behind by a pruned comparison (`false`).
    ///
    /// [`score`]: EntryScore::score
    pub exact: bool,
}

/// The outcome of classifying one target program.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Per-entry similarity, in repository entry order. Entries the
    /// pruned scan skipped carry an upper bound (see [`EntryScore`]);
    /// the best entry is always exact.
    pub scores: Vec<EntryScore>,
    /// Index of the best-scoring entry in [`scores`], if any entry
    /// exists. Its score is exact and bitwise identical to what a naive
    /// full scan would report.
    ///
    /// [`scores`]: Detection::scores
    pub best: Option<usize>,
    /// The detection threshold used.
    pub threshold: f64,
}

impl Detection {
    /// The best-scoring repository entry, if any.
    pub fn best_entry(&self) -> Option<&EntryScore> {
        self.best.map(|i| &self.scores[i])
    }

    /// Whether the target is classified as an attack (best score clears
    /// the threshold).
    pub fn is_attack(&self) -> bool {
        self.best_entry().is_some_and(|e| e.score >= self.threshold)
    }

    /// The predicted attack family, or `None` for benign.
    pub fn family(&self) -> Option<AttackFamily> {
        if self.is_attack() {
            self.best_entry().map(|e| e.family)
        } else {
            None
        }
    }

    /// The best similarity score (0.0 for an empty repository).
    pub fn best_score(&self) -> f64 {
        self.best_entry().map_or(0.0, |e| e.score)
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.family() {
            Some(fam) => write!(f, "ATTACK {fam} (score {:.2}%)", self.best_score() * 100.0),
            None => write!(f, "benign (best score {:.2}%)", self.best_score() * 100.0),
        }
    }
}

/// The full detection as one JSON object — the canonical machine-facing
/// rendering shared by `scaguard classify --json` and the `sca-serve`
/// wire protocol, so the two are byte-identical for the same detection.
pub fn detection_json(program: &str, detection: &Detection) -> Json {
    let scores = detection
        .scores
        .iter()
        .map(|entry| {
            Json::Obj(vec![
                ("poc".into(), Json::Str(entry.poc.to_string())),
                ("family".into(), Json::Str(entry.family.to_string())),
                ("score".into(), Json::Num(entry.score)),
                ("exact".into(), Json::Bool(entry.exact)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("program".into(), Json::Str(program.to_string())),
        ("attack".into(), Json::Bool(detection.is_attack())),
        (
            "family".into(),
            match detection.family() {
                Some(f) => Json::Str(f.to_string()),
                None => Json::Null,
            },
        ),
        (
            "best_poc".into(),
            match detection.best_entry() {
                Some(entry) => Json::Str(entry.poc.to_string()),
                None => Json::Null,
            },
        ),
        ("best_score".into(), Json::Num(detection.best_score())),
        ("threshold".into(), Json::Num(detection.threshold)),
        ("scores".into(), Json::Arr(scores)),
    ])
}

/// The prepared scan state a detector keeps behind a mutex: the engine
/// (intern pool + `D_IS` cache) and the repository's prepared models.
#[derive(Debug, Clone)]
struct ScanState {
    engine: SimilarityEngine,
    prepared: Vec<PreparedModel>,
}

impl ScanState {
    fn build(repo: &ModelRepository) -> ScanState {
        let mut engine = SimilarityEngine::new();
        let prepared = repo
            .entries()
            .iter()
            .map(|e| engine.prepare(&e.model))
            .collect();
        ScanState { engine, prepared }
    }
}

/// Pool-size limit after which a detector's persistent engine is rebuilt
/// from the repository, bounding memory on long-lived detectors that
/// classify an unbounded stream of targets.
const POOL_LIMIT: usize = 1 << 16;

/// The result of scanning one target against the prepared repository.
struct ScanResult {
    scores: Vec<EntryScore>,
    best: Option<usize>,
}

/// A parallel-scan result slot: the entry's exact distance, when its
/// comparison ran to completion.
type EntrySlot = Mutex<Option<f64>>;

/// The SCAGuard detector: a model repository plus a similarity threshold,
/// optionally accelerated by a [`RepoIndex`] (see [`Detector::set_index`]).
#[derive(Debug)]
pub struct Detector {
    repo: ModelRepository,
    threshold: f64,
    index: Option<RepoIndex>,
    scan: Mutex<ScanState>,
}

impl Clone for Detector {
    fn clone(&self) -> Detector {
        Detector {
            repo: self.repo.clone(),
            threshold: self.threshold,
            index: self.index.clone(),
            scan: Mutex::new(self.lock_scan().clone()),
        }
    }
}

/// Map a DTW distance to the similarity score `1 / (D + 1)` — the same
/// expression [`crate::similarity::similarity_score`] uses.
fn score_of(distance: f64) -> f64 {
    1.0 / (distance + 1.0)
}

/// A detection threshold outside `[0, 1]` (or not a number at all).
///
/// Thresholds arrive from untrusted places — CLI flags, wire requests,
/// service configuration — so an invalid one must surface as an error
/// the caller can render, never as a panic inside the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidThreshold(pub f64);

impl fmt::Display for InvalidThreshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "threshold {} out of range (similarity thresholds must be within [0, 1])",
            self.0
        )
    }
}

impl std::error::Error for InvalidThreshold {}

impl Detector {
    /// The default similarity threshold.
    ///
    /// The paper uses 45%, the middle of *its* Fig.-5 plateau (30%–60%).
    /// On this reproduction's substrate the similarity scale is compressed
    /// (models are tens of blocks rather than thousands of x86 blocks),
    /// shifting the >90% plateau of the reproduced Fig. 5 to roughly
    /// 20%–30%. The default sits at that plateau's lower edge, which keeps
    /// recall on the far-variant tasks (E3/E4) where the compressed scale
    /// bites hardest, at a benign false-positive rate (1.25% at paper
    /// scale) below the 3.36% the paper reports; see EXPERIMENTS.md for
    /// the sweep.
    pub const DEFAULT_THRESHOLD: f64 = 0.20;

    /// Create a detector. The repository's models are interned into the
    /// similarity engine once, here.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidThreshold`] when `threshold` is outside `[0, 1]`
    /// (NaN included). Thresholds reach this constructor from CLI flags
    /// and wire requests, so a bad one is a rejected input, not a panic.
    pub fn new(repo: ModelRepository, threshold: f64) -> Result<Detector, InvalidThreshold> {
        if !(0.0..=1.0).contains(&threshold) {
            return Err(InvalidThreshold(threshold));
        }
        let scan = Mutex::new(ScanState::build(&repo));
        Ok(Detector {
            repo,
            threshold,
            index: None,
            scan,
        })
    }

    /// The repository backing this detector.
    pub fn repository(&self) -> &ModelRepository {
        &self.repo
    }

    /// The detection threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Attach a [`RepoIndex`] so repository scans visit entries
    /// cheapest-first and stop early on the sort-key envelope. Detections
    /// are byte-identical with and without an index; only the amount of
    /// work changes.
    ///
    /// # Errors
    ///
    /// Returns [`IndexMismatch`] when the index was not built from this
    /// detector's repository (stale sidecar, foreign file); the detector
    /// keeps its previous index in that case.
    pub fn set_index(&mut self, index: RepoIndex) -> Result<(), IndexMismatch> {
        if !index.matches(&self.repo) {
            return Err(IndexMismatch);
        }
        self.index = Some(index);
        Ok(())
    }

    /// The attached index, if any.
    pub fn index(&self) -> Option<&RepoIndex> {
        self.index.as_ref()
    }

    /// Build a fresh [`RepoIndex`] for this detector's repository (with
    /// default [`IndexConfig`]); always valid for [`Detector::set_index`].
    pub fn build_index(&self) -> RepoIndex {
        RepoIndex::build(&self.repo, &IndexConfig::default())
    }

    fn lock_scan(&self) -> std::sync::MutexGuard<'_, ScanState> {
        // The engine is pure bookkeeping; a panicked scan leaves it
        // consistent, so poisoning is safe to ignore.
        self.scan.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Classify a prebuilt target model with the pruned repo scan.
    ///
    /// The best entry, score, and verdict are bitwise identical to a
    /// naive full scan; non-best entries may carry upper bounds (see
    /// [`EntryScore::exact`]). Use [`Detector::classify_model_full`]
    /// when every per-entry score must be exact.
    pub fn classify_model(&self, target: &CstBbs) -> Detection {
        let mut sp = sca_telemetry::span("detect.scan");
        let mut state = self.lock_scan();
        let result = scan_target(&mut state, &self.repo, self.index.as_ref(), target, None)
            .expect("no deadline was given");
        if state.engine.pool_len() > POOL_LIMIT {
            *state = ScanState::build(&self.repo);
        }
        let detection = self.detection(result);
        self.annotate(&mut sp, &detection);
        detection
    }

    /// [`Detector::classify_model`] under a wall-clock deadline,
    /// propagated into the engine's bounded-DTW hook: the scan checks the
    /// deadline before each repository entry and once per DTW row, so a
    /// request that runs out of time aborts within microseconds instead
    /// of finishing an arbitrarily large scan. A detection that *does*
    /// come back is bitwise identical to [`Detector::classify_model`] —
    /// the deadline only ever aborts, it never alters cutoffs or scores.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] when `deadline` passes mid-scan.
    pub fn classify_model_deadline(
        &self,
        target: &CstBbs,
        deadline: Instant,
    ) -> Result<Detection, DeadlineExceeded> {
        let mut sp = sca_telemetry::span("detect.scan");
        let mut state = self.lock_scan();
        let result = match scan_target(
            &mut state,
            &self.repo,
            self.index.as_ref(),
            target,
            Some(deadline),
        ) {
            Ok(r) => r,
            Err(e) => {
                sp.attr("deadline_exceeded", true);
                return Err(e);
            }
        };
        if state.engine.pool_len() > POOL_LIMIT {
            *state = ScanState::build(&self.repo);
        }
        let detection = self.detection(result);
        self.annotate(&mut sp, &detection);
        Ok(detection)
    }

    /// Phases 0 and 1 of the pruned scan only: find the exact best entry
    /// (index and DTW distance) without rendering per-entry scores.
    ///
    /// This is the scatter half of a sharded scan (see [`crate::shard`]):
    /// each shard runs `scan_best` over its slice of the repository, the
    /// caller merges the per-shard winners with the scan's own tie-break
    /// rule (minimum distance, **later** index on ties), then renders
    /// every slice against the merged best with
    /// [`Detector::render_slice`]. The pair composes to detections
    /// byte-identical to [`Detector::classify_model`]: a tie candidate's
    /// DTW always runs to completion (the early-abandon row minimum is a
    /// lower bound on the final distance, so a distance equal to the
    /// cutoff can never abandon), so every shard reports its true best as
    /// an exact distance no matter how the repository was decomposed.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] when `deadline` passes mid-scan.
    pub fn scan_best(
        &self,
        target: &CstBbs,
        deadline: Option<Instant>,
    ) -> Result<Option<(usize, f64)>, DeadlineExceeded> {
        self.scan_best_seeded(target, None, deadline)
    }

    /// [`Detector::scan_best`] with phase 1's best-so-far cutoff
    /// pre-seeded: `seed` is an entry index plus that entry's **exact**
    /// DTW distance to `target`, known before the scan starts (a
    /// streaming session carries the previous increment's winner forward
    /// via [`crate::engine::PrefixDtw`]).
    ///
    /// The result is bitwise identical to the unseeded scan. Every prune
    /// requires a lower bound strictly above the cutoff, and the cutoff
    /// never drops below the true best distance `d*` (the seed is an
    /// exact distance of one entry, so `seed.1 >= d*`); hence every entry
    /// with distance `<= d*` still completes its DTW (a distance equal to
    /// the cutoff never abandons — the row minimum is a lower bound on
    /// the final distance), and the tie rule (minimum distance, later
    /// index) resolves over the same completed set. Seeding only skips
    /// comparisons that provably cannot win.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] when `deadline` passes mid-scan.
    pub fn scan_best_seeded(
        &self,
        target: &CstBbs,
        seed: Option<(usize, f64)>,
        deadline: Option<Instant>,
    ) -> Result<Option<(usize, f64)>, DeadlineExceeded> {
        let mut state = self.lock_scan();
        let p1 = scan_phase1(
            &mut state,
            &self.repo,
            self.index.as_ref(),
            target,
            seed,
            deadline,
        )?;
        flush_scan_counts(&p1.counts);
        if state.engine.pool_len() > POOL_LIMIT {
            *state = ScanState::build(&self.repo);
        }
        Ok(p1.best)
    }

    /// Phase 2 of a pruned scan against an externally supplied best
    /// distance: render this repository's per-entry scores exactly as the
    /// unsharded scan's phase 2 would, bounding every entry by `best_d`
    /// and reporting entry `exact_idx` (when given — the shard that owns
    /// the merged winner) with its exact score. The render is a pure
    /// function of the target, the repository, and `best_d` — the lower
    /// bounds it consults are deterministic functions of (target, entry)
    /// — so slice renders concatenated in repository order are
    /// byte-identical to the unsharded scan's score list.
    pub fn render_slice(
        &self,
        target: &CstBbs,
        best_d: f64,
        exact_idx: Option<usize>,
    ) -> Vec<EntryScore> {
        debug_assert!(exact_idx.is_none_or(|i| i < self.repo.len()));
        let mut state = self.lock_scan();
        let mut counts = ScanCounts::default();
        let scores = {
            let ScanState { engine, prepared } = &mut *state;
            let prepared_target = engine.prepare(target);
            let env: Vec<f64> = prepared
                .iter()
                .map(|pm| lb_interval(&prepared_target, pm))
                .collect();
            counts.lb_evals += prepared.len() as u64;
            let mut lb1c = vec![f64::NAN; prepared.len()];
            let mut lb2c = vec![f64::NAN; prepared.len()];
            render_scores_against(
                &self.repo,
                &prepared_target,
                prepared,
                &env,
                &mut lb1c,
                &mut lb2c,
                best_d,
                exact_idx,
                &mut counts,
            )
        };
        flush_scan_counts(&counts);
        if state.engine.pool_len() > POOL_LIMIT {
            *state = ScanState::build(&self.repo);
        }
        scores
    }

    /// Classify a prebuilt target model with an exhaustive scan: every
    /// entry's score is exact (still served by the interned engine).
    /// Never consults the index — there is nothing to skip.
    pub fn classify_model_full(&self, target: &CstBbs) -> Detection {
        let mut sp = sca_telemetry::span("detect.scan");
        let mut state = self.lock_scan();
        let result = scan_full(&mut state, &self.repo, target);
        if state.engine.pool_len() > POOL_LIMIT {
            *state = ScanState::build(&self.repo);
        }
        let detection = self.detection(result);
        self.annotate(&mut sp, &detection);
        detection
    }

    /// Classify a prebuilt target model, scanning the repository with
    /// `jobs` worker threads (std-only; `jobs <= 1` degrades to the
    /// serial scan). Workers drain the shared visit order (index-sorted
    /// when an index is attached) and share the best-so-far distance
    /// through an atomic, so pruning works across threads; scores are
    /// rendered serially from the merged best distance, so the output is
    /// byte-identical to the serial scan's.
    pub fn classify_model_jobs(&self, target: &CstBbs, jobs: usize) -> Detection {
        let jobs = jobs.clamp(1, self.repo.len().max(1));
        if jobs <= 1 {
            return self.classify_model(target);
        }
        let mut seed = self.lock_scan().clone();
        let mut counts = ScanCounts::default();
        let p0 = {
            let ScanState { engine, prepared } = &mut seed;
            phase0(engine, prepared, self.index.as_ref(), target, &mut counts)
        };
        let n = self.repo.len();
        let order = sorted_order(p0.keys.as_deref(), n);
        let next = AtomicUsize::new(0);
        // Best distance so far, as bits: for non-negative IEEE floats the
        // bit pattern orders exactly like the value, so `fetch_min` on
        // bits is `fetch_min` on distances.
        let best_bits = AtomicU64::new(f64::INFINITY.to_bits());
        let slots: Vec<EntrySlot> = (0..n).map(|_| Mutex::new(None)).collect();
        let shared_counts: Mutex<ScanCounts> = Mutex::new(ScanCounts::default());
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| {
                    // The seed's pool already interned the target, so the
                    // shared prepared target is valid in every clone.
                    let mut state = seed.clone();
                    let mut local = ScanCounts::default();
                    loop {
                        let pos = next.fetch_add(1, Ordering::Relaxed);
                        if pos >= n {
                            break;
                        }
                        let i = order[pos];
                        let cutoff = f64::from_bits(best_bits.load(Ordering::Relaxed));
                        if let Some(keys) = &p0.keys {
                            // The shared best only ever decreases, so a key
                            // above the cutoff now stays above it forever:
                            // skipping here is admissible even though other
                            // workers are still lowering the best.
                            if keys[i] > cutoff {
                                local.entries_skipped += 1;
                                state.engine.note_lb_skip(&p0.target, &state.prepared[i]);
                                continue;
                            }
                        }
                        let (mut lb1, mut lb2) = (f64::NAN, f64::NAN);
                        let distance = probe_entry(
                            &mut state.engine,
                            &p0.target,
                            &state.prepared[i],
                            &self.repo.entries()[i],
                            p0.query.as_ref(),
                            i,
                            p0.env[i],
                            cutoff,
                            None,
                            &mut lb1,
                            &mut lb2,
                            &mut local,
                        )
                        .expect("no deadline was given");
                        if let Some(d) = distance {
                            best_bits.fetch_min(d.to_bits(), Ordering::Relaxed);
                            *slot_lock(&slots[i]) = Some(d);
                        }
                    }
                    slot_lock(&shared_counts).absorb(&local);
                });
            }
        });
        // Deterministic merge: minimum distance, later entry on ties —
        // identical to the serial scan's rule, independent of which
        // worker got there first.
        let mut best: Option<(usize, f64)> = None;
        for (i, slot) in slots.into_iter().enumerate() {
            if let Some(d) = slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                if best.is_none_or(|(bi, bd)| d < bd || (d == bd && i > bi)) {
                    best = Some((i, d));
                }
            }
        }
        counts.absorb(&slot_lock(&shared_counts));
        let mut lb1c = vec![f64::NAN; n];
        let mut lb2c = vec![f64::NAN; n];
        let scores = render_scores(
            &self.repo,
            &p0.target,
            &seed.prepared,
            &p0.env,
            &mut lb1c,
            &mut lb2c,
            best,
            &mut counts,
        );
        flush_scan_counts(&counts);
        self.detection(ScanResult {
            scores,
            best: best.map(|(i, _)| i),
        })
    }

    /// Classify a batch of prebuilt target models over a std-only worker
    /// pool (`jobs <= 1` degrades to a serial loop). Each worker owns a
    /// clone of the prepared scan state, so the `D_IS` cache warms up
    /// across that worker's share of the batch with no lock contention.
    /// Results are in `targets` order and identical to serial
    /// [`Detector::classify_model`] calls.
    pub fn classify_batch(&self, targets: &[CstBbs], jobs: usize) -> Vec<Detection> {
        let jobs = jobs.clamp(1, targets.len().max(1));
        if jobs <= 1 {
            return targets.iter().map(|t| self.classify_model(t)).collect();
        }
        let seed = self.lock_scan().clone();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Detection>>> =
            targets.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| {
                    let mut state = seed.clone();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= targets.len() {
                            break;
                        }
                        let result = scan_target(
                            &mut state,
                            &self.repo,
                            self.index.as_ref(),
                            &targets[i],
                            None,
                        )
                        .expect("no deadline was given");
                        *slot_lock(&slots[i]) = Some(self.detection(result));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every target classified")
            })
            .collect()
    }

    fn detection(&self, result: ScanResult) -> Detection {
        Detection {
            scores: result.scores,
            best: result.best,
            threshold: self.threshold,
        }
    }

    /// Model `program` and classify it.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the modeling pipeline.
    pub fn classify(
        &self,
        program: &Program,
        victim: &Victim,
        config: &ModelingConfig,
    ) -> Result<Detection, ModelError> {
        self.classify_jobs(program, victim, config, 1)
    }

    /// Model `program` and classify it, scanning the repository with
    /// `jobs` worker threads.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the modeling pipeline.
    pub fn classify_jobs(
        &self,
        program: &Program,
        victim: &Victim,
        config: &ModelingConfig,
        jobs: usize,
    ) -> Result<Detection, ModelError> {
        let mut sp = sca_telemetry::span("detect");
        sp.attr("program", program.name());
        sp.attr("threshold", self.threshold);
        let outcome = build_model(program, victim, config)?;
        let detection = self.classify_model_jobs(&outcome.cst_bbs, jobs);
        self.annotate(&mut sp, &detection);
        Ok(detection)
    }

    /// [`Detector::classify_jobs`] with the target model served by a
    /// [`ModelBuilder`] — repeated classifications of the same target
    /// (or a warm disk cache) skip the modeling pass entirely. The
    /// builder's configuration is used for modeling.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the modeling pipeline.
    pub fn classify_with_builder(
        &self,
        program: &Program,
        victim: &Victim,
        builder: &ModelBuilder,
        jobs: usize,
    ) -> Result<Detection, ModelError> {
        let mut sp = sca_telemetry::span("detect");
        sp.attr("program", program.name());
        sp.attr("threshold", self.threshold);
        let model = builder.build_cst(program, victim)?;
        let detection = self.classify_model_jobs(&model, jobs);
        self.annotate(&mut sp, &detection);
        Ok(detection)
    }

    /// Attach the standard verdict attributes to a `detect` or
    /// `detect.scan` span.
    fn annotate(&self, sp: &mut sca_telemetry::SpanGuard, detection: &Detection) {
        if sp.is_recording() {
            sp.attr(
                "verdict",
                if detection.is_attack() {
                    "attack"
                } else {
                    "benign"
                },
            );
            if let Some(best) = detection.best_entry() {
                sp.attr("best_poc", &*best.poc);
                sp.attr("best_family", format!("{:?}", best.family));
                sp.attr("best_score", best.score);
            }
            // Best (possibly bounded) score per family, one attribute each.
            for family in AttackFamily::ALL {
                let best = detection
                    .scores
                    .iter()
                    .filter(|e| e.family == family)
                    .map(|e| e.score)
                    .fold(f64::NEG_INFINITY, f64::max);
                if best.is_finite() {
                    sp.attr(&format!("score.{family:?}"), best);
                }
            }
        }
    }
}

fn slot_lock<T>(slot: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

/// Bridge an engine stats delta into the telemetry counters.
fn flush_engine_stats(delta: EngineStats) {
    if !sca_telemetry::enabled() {
        return;
    }
    sca_telemetry::counter("dtw.cells", delta.cells);
    sca_telemetry::counter("dtw.cells_pruned", delta.cells_pruned);
    sca_telemetry::counter("dtw.lb_skips", delta.lb_skips);
    sca_telemetry::counter("simcache.hits", delta.cache_hits);
    sca_telemetry::counter("simcache.misses", delta.cache_misses);
}

/// Per-scan work counters for the index/pruning machinery, bridged into
/// the `index.*` telemetry counters by [`flush_scan_counts`] once per
/// scan. Accumulated locally (plain integers); the disabled-telemetry
/// cost is the single relaxed atomic load inside `sca_telemetry::enabled`.
#[derive(Debug, Clone, Copy, Default)]
struct ScanCounts {
    /// Lower-bound evaluations across all cascade stages and both phases
    /// (envelope, length, CSP envelope, pivot bounds).
    lb_evals: u64,
    /// Phase-1 entries rejected without running any DTW — by a cascade
    /// bound or by the index sort-key stop.
    entries_skipped: u64,
    /// DTW comparisons that ran to completion (an exact distance).
    /// Abandoned probes are partial by design and not counted here.
    full_dtw_runs: u64,
}

impl ScanCounts {
    fn absorb(&mut self, other: &ScanCounts) {
        self.lb_evals += other.lb_evals;
        self.entries_skipped += other.entries_skipped;
        self.full_dtw_runs += other.full_dtw_runs;
    }
}

/// Bridge one scan's pruning counters into the telemetry counters.
fn flush_scan_counts(counts: &ScanCounts) {
    if !sca_telemetry::enabled() {
        return;
    }
    sca_telemetry::counter("index.lb_evals", counts.lb_evals);
    sca_telemetry::counter("index.entries_skipped", counts.entries_skipped);
    sca_telemetry::counter("index.full_dtw_runs", counts.full_dtw_runs);
}

/// Phase 0 of a pruned scan: the prepared target, the per-entry
/// interval-envelope bounds, and (when an index is attached) the
/// phase-1 sort keys.
struct Phase0<'ix> {
    target: PreparedModel,
    query: Option<QueryContext<'ix>>,
    /// Per-entry interval-envelope bound — index-free, so phase 2 can
    /// render from it identically with and without an index.
    env: Vec<f64>,
    /// Per-entry sort keys (`Some` only with an index): `max(env, pivot
    /// interval bound)`. Phase 1 visits entries in ascending `(key,
    /// index)` order — the serial scan through a lazy min-heap, worker
    /// pools through a precomputed sort; both produce the same sequence.
    /// Once a visited key exceeds the best-so-far distance, every
    /// unvisited entry's key does too, so the scan stops.
    keys: Option<Vec<f64>>,
}

fn phase0<'ix>(
    engine: &mut SimilarityEngine,
    prepared: &[PreparedModel],
    index: Option<&'ix RepoIndex>,
    target: &CstBbs,
    counts: &mut ScanCounts,
) -> Phase0<'ix> {
    let prepared_target = engine.prepare(target);
    let n = prepared.len();
    let query = index.map(|ix| ix.query(target));
    let env: Vec<f64> = prepared
        .iter()
        .map(|pm| lb_interval(&prepared_target, pm))
        .collect();
    counts.lb_evals += n as u64;
    let keys = query.as_ref().map(|q| {
        let keys: Vec<f64> = (0..n).map(|i| env[i].max(q.interval_bound(i))).collect();
        counts.lb_evals += n as u64;
        keys
    });
    Phase0 {
        target: prepared_target,
        query,
        env,
        keys,
    }
}

/// The visit order the sort keys dictate, materialized for a worker pool
/// to drain by shared atomic position: ascending `(key, index)`, i.e.
/// cheapest first, repository order on ties (and throughout when no index
/// is attached). The serial scan does not materialize this — it pops the
/// same sequence lazily from a min-heap ([`scan_target`]).
fn sorted_order(keys: Option<&[f64]>, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if let Some(keys) = keys {
        order.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]).then(a.cmp(&b)));
    }
    order
}

/// Phase-1 probe of one entry under `cutoff`: the cheapest-first cascade
/// (precomputed interval envelope → length bound → CSP envelope → pivot
/// nearest-neighbor bound → early-abandoned DTW), each stage running only
/// if the previous one failed to disqualify the entry. Returns the exact
/// distance when the DTW ran to completion, `None` when the entry was
/// skipped or abandoned. `lb1`/`lb2` cache the heavy bounds (pure
/// functions of target and entry) for phase 2.
///
/// # Errors
///
/// Returns [`DeadlineExceeded`] when `deadline` passes mid-comparison.
#[allow(clippy::too_many_arguments)]
fn probe_entry(
    engine: &mut SimilarityEngine,
    target: &PreparedModel,
    entry_model: &PreparedModel,
    entry: &RepoEntry,
    query: Option<&QueryContext<'_>>,
    entry_idx: usize,
    env: f64,
    cutoff: f64,
    deadline: Option<Instant>,
    lb1: &mut f64,
    lb2: &mut f64,
    counts: &mut ScanCounts,
) -> Result<Option<f64>, DeadlineExceeded> {
    let mut sp = sca_telemetry::span("pipeline.compare.dtw");
    let before = engine.stats();
    let outcome = if env > cutoff {
        counts.entries_skipped += 1;
        engine.note_lb_skip(target, entry_model);
        Bounded::AtLeast(env)
    } else if !cutoff.is_finite() {
        // No best yet (first visited entry): the bounds can't disqualify
        // anything, go straight to the (unbounded) DTW.
        let r = engine.distance_bounded_until(target, entry_model, cutoff, deadline)?;
        counts.full_dtw_runs += 1;
        r
    } else {
        *lb1 = lb_length(target, entry_model);
        counts.lb_evals += 1;
        if *lb1 > cutoff {
            counts.entries_skipped += 1;
            engine.note_lb_skip(target, entry_model);
            Bounded::AtLeast(*lb1)
        } else {
            *lb2 = lb_csp_envelope(target, entry_model);
            counts.lb_evals += 1;
            if *lb2 > cutoff {
                counts.entries_skipped += 1;
                engine.note_lb_skip(target, entry_model);
                Bounded::AtLeast(lb2.max(*lb1))
            } else {
                let pivot = query.map_or(0.0, |q| {
                    counts.lb_evals += 1;
                    q.nn_bound(entry_idx)
                });
                if pivot > cutoff {
                    counts.entries_skipped += 1;
                    engine.note_lb_skip(target, entry_model);
                    Bounded::AtLeast(pivot)
                } else {
                    let r = engine.distance_bounded_until(target, entry_model, cutoff, deadline)?;
                    if matches!(r, Bounded::Exact(_)) {
                        counts.full_dtw_runs += 1;
                    }
                    r
                }
            }
        }
    };
    let distance = outcome.exact();
    if sp.is_recording() {
        let delta = engine.stats().since(&before);
        sp.attr("poc", &*entry.name);
        sp.attr("family", format!("{:?}", entry.family));
        sp.attr("cells", delta.cells);
        sp.attr("cells_pruned", delta.cells_pruned);
        sp.attr("score", score_of(outcome.lower_bound()));
        sp.attr("exact", distance.is_some());
        sca_telemetry::counter("dtw.comparisons", 1);
        flush_engine_stats(delta);
    }
    Ok(distance)
}

/// Phase 2: render the per-entry scores from the best distance found in
/// phase 1 — a pure function of the target, the repository, and that
/// distance, never of the visit order, so indexed, linear, and parallel
/// scans produce byte-identical detections. The best entry reports its
/// exact score; every other entry reports the tightest *deterministic*
/// lower-bound cascade value as an upper-bound score (no DTW runs here).
#[allow(clippy::too_many_arguments)]
fn render_scores(
    repo: &ModelRepository,
    target: &PreparedModel,
    prepared: &[PreparedModel],
    env: &[f64],
    lb1c: &mut [f64],
    lb2c: &mut [f64],
    best: Option<(usize, f64)>,
    counts: &mut ScanCounts,
) -> Vec<EntryScore> {
    let Some((best_idx, best_d)) = best else {
        // A nonempty repository always yields a best entry (the first
        // visited entry's DTW runs under an infinite cutoff).
        debug_assert!(repo.is_empty());
        return Vec::new();
    };
    render_scores_against(
        repo,
        target,
        prepared,
        env,
        lb1c,
        lb2c,
        best_d,
        Some(best_idx),
        counts,
    )
}

/// The body of [`render_scores`], parameterized on an external best
/// distance: `exact_idx` is the local index of the entry whose exact
/// distance *is* `best_d`, or `None` when another shard of a decomposed
/// repository owns the winner and every local entry renders a bound.
#[allow(clippy::too_many_arguments)]
fn render_scores_against(
    repo: &ModelRepository,
    target: &PreparedModel,
    prepared: &[PreparedModel],
    env: &[f64],
    lb1c: &mut [f64],
    lb2c: &mut [f64],
    best_d: f64,
    exact_idx: Option<usize>,
    counts: &mut ScanCounts,
) -> Vec<EntryScore> {
    repo.entries()
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            if Some(i) == exact_idx {
                return EntryScore {
                    poc: entry.name.clone(),
                    family: entry.family,
                    score: score_of(best_d),
                    exact: true,
                };
            }
            // The same cheapest-first cascade as phase 1, but against the
            // fixed final distance: deepen the bound only while it has
            // not yet proven the entry can't beat the best. Cached
            // phase-1 values are pure functions of (target, entry), so
            // reusing them cannot depend on the visit order.
            let mut bound = env[i];
            if bound <= best_d {
                if lb1c[i].is_nan() {
                    lb1c[i] = lb_length(target, &prepared[i]);
                    counts.lb_evals += 1;
                }
                bound = bound.max(lb1c[i]);
                if bound <= best_d {
                    if lb2c[i].is_nan() {
                        lb2c[i] = lb_csp_envelope(target, &prepared[i]);
                        counts.lb_evals += 1;
                    }
                    bound = bound.max(lb2c[i]);
                }
            }
            EntryScore {
                poc: entry.name.clone(),
                family: entry.family,
                score: score_of(bound),
                exact: false,
            }
        })
        .collect()
}

/// Scan the target against the repository: phase 0 (envelopes and visit
/// order), phase 1 (find the best entry under the best-so-far cutoff,
/// stopping at the first too-expensive sort key when indexed), phase 2
/// (render scores from the final best distance). The optional wall-clock
/// deadline is checked before every phase-1 entry and once per DTW row.
///
/// # Errors
///
/// Returns [`DeadlineExceeded`] when `deadline` passes mid-scan.
fn scan_target(
    state: &mut ScanState,
    repo: &ModelRepository,
    index: Option<&RepoIndex>,
    target: &CstBbs,
    deadline: Option<Instant>,
) -> Result<ScanResult, DeadlineExceeded> {
    let mut p1 = scan_phase1(state, repo, index, target, None, deadline)?;
    let scores = render_scores(
        repo,
        &p1.p0.target,
        &state.prepared,
        &p1.p0.env,
        &mut p1.lb1c,
        &mut p1.lb2c,
        p1.best,
        &mut p1.counts,
    );
    flush_scan_counts(&p1.counts);
    Ok(ScanResult {
        scores,
        best: p1.best.map(|(i, _)| i),
    })
}

/// Everything [`scan_target`] does up to (and including) finding the
/// best entry, bundled so phase 2 can run later — or against a *merged*
/// best when the repository is decomposed into shards and another
/// shard's winner beats this one's ([`Detector::scan_best`]).
struct Phase1<'ix> {
    p0: Phase0<'ix>,
    lb1c: Vec<f64>,
    lb2c: Vec<f64>,
    best: Option<(usize, f64)>,
    counts: ScanCounts,
}

fn scan_phase1<'ix>(
    state: &mut ScanState,
    repo: &ModelRepository,
    index: Option<&'ix RepoIndex>,
    target: &CstBbs,
    seed: Option<(usize, f64)>,
    deadline: Option<Instant>,
) -> Result<Phase1<'ix>, DeadlineExceeded> {
    let ScanState { engine, prepared } = state;
    let mut counts = ScanCounts::default();
    let p0 = phase0(engine, prepared, index, target, &mut counts);
    let n = repo.len();
    debug_assert!(seed.is_none_or(|(i, _)| i < n));
    let mut best: Option<(usize, f64)> = seed;
    let mut lb1c = vec![f64::NAN; n];
    let mut lb2c = vec![f64::NAN; n];
    // Lazy visit order: a min-heap over `(key bits, index)` pops entries
    // in exactly the ascending `(key, index)` sequence a full sort would
    // produce (keys are non-negative finite floats, whose bit patterns
    // order like their values), but costs `O(n)` to build plus `O(log n)`
    // per visited entry — and the indexed scan visits only a short prefix
    // before the sort-key stop.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = match &p0.keys {
        Some(keys) => keys
            .iter()
            .enumerate()
            .map(|(i, k)| Reverse((k.to_bits(), i)))
            .collect(),
        None => BinaryHeap::new(),
    };
    let mut linear = 0..n;
    loop {
        // Without an index there are no keys: visit in repository order
        // with a key that can never trip the stop below.
        let next = if p0.keys.is_some() {
            heap.pop().map(|Reverse((k, i))| (i, f64::from_bits(k)))
        } else {
            linear.next().map(|i| (i, f64::NEG_INFINITY))
        };
        let Some((i, key)) = next else { break };
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(DeadlineExceeded);
            }
        }
        let cutoff = best.map_or(f64::INFINITY, |(_, d)| d);
        if key > cutoff {
            // Keys ascend along the visit order: this entry and every
            // entry still in the heap are rejected by their sort key
            // alone.
            counts.entries_skipped += (heap.len() + 1) as u64;
            engine.note_lb_skip(&p0.target, &prepared[i]);
            for &Reverse((_, j)) in heap.iter() {
                engine.note_lb_skip(&p0.target, &prepared[j]);
            }
            break;
        }
        let distance = probe_entry(
            engine,
            &p0.target,
            &prepared[i],
            &repo.entries()[i],
            p0.query.as_ref(),
            i,
            p0.env[i],
            cutoff,
            deadline,
            &mut lb1c[i],
            &mut lb2c[i],
            &mut counts,
        )?;
        if let Some(d) = distance {
            // Minimum distance, later entry on ties — the same rule as
            // the naive `max_by` over all scores, stated in a form that
            // is independent of the visit order.
            if best.is_none_or(|(bi, bd)| d < bd || (d == bd && i > bi)) {
                best = Some((i, d));
            }
        }
    }
    Ok(Phase1 {
        p0,
        lb1c,
        lb2c,
        best,
        counts,
    })
}

/// Exhaustive scan: every entry's DTW runs to completion under an
/// infinite cutoff, so every score is exact. No pruning, no index.
fn scan_full(state: &mut ScanState, repo: &ModelRepository, target: &CstBbs) -> ScanResult {
    let ScanState { engine, prepared } = state;
    let prepared_target = engine.prepare(target);
    let mut counts = ScanCounts::default();
    let mut scores = Vec::with_capacity(repo.len());
    let mut best: Option<(usize, f64)> = None;
    for (i, (entry, entry_model)) in repo.entries().iter().zip(prepared.iter()).enumerate() {
        let (mut lb1, mut lb2) = (f64::NAN, f64::NAN);
        let distance = probe_entry(
            engine,
            &prepared_target,
            entry_model,
            entry,
            None,
            i,
            0.0,
            f64::INFINITY,
            None,
            &mut lb1,
            &mut lb2,
            &mut counts,
        )
        .expect("no deadline was given");
        let d = distance.expect("an unbounded comparison always completes");
        if best.is_none_or(|(bi, bd)| d < bd || (d == bd && i > bi)) {
            best = Some((i, d));
        }
        scores.push(EntryScore {
            poc: entry.name.clone(),
            family: entry.family,
            score: score_of(d),
            exact: true,
        });
    }
    flush_scan_counts(&counts);
    ScanResult {
        scores,
        best: best.map(|(i, _)| i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{Cst, CstStep};
    use crate::similarity::similarity_score;

    fn dummy_model(n: usize, marker: u64) -> CstBbs {
        (0..n)
            .map(|i| CstStep {
                bb_addr: marker + i as u64,
                norm_insts: vec![sca_isa::NormInst::nullary(if marker == 0 {
                    "nop"
                } else {
                    "halt"
                })],
                cst: Cst::identity(),
                first_seen: i as u64,
            })
            .collect()
    }

    fn repo4() -> ModelRepository {
        let mut repo = ModelRepository::new();
        repo.add_model(AttackFamily::FlushReload, "fr", dummy_model(4, 0));
        repo.add_model(AttackFamily::PrimeProbe, "pp", dummy_model(10, 1));
        repo.add_model(AttackFamily::SpectreFlushReload, "sfr", dummy_model(7, 0));
        repo.add_model(AttackFamily::SpectrePrimeProbe, "spp", dummy_model(2, 1));
        repo
    }

    #[test]
    fn empty_repo_classifies_benign() {
        let d = Detector::new(ModelRepository::new(), 0.45).unwrap();
        let det = d.classify_model(&dummy_model(3, 0));
        assert!(!det.is_attack());
        assert_eq!(det.family(), None);
        assert_eq!(det.best_score(), 0.0);
    }

    #[test]
    fn identical_model_scores_one() {
        let mut repo = ModelRepository::new();
        repo.add_model(AttackFamily::FlushReload, "m", dummy_model(4, 0));
        let d = Detector::new(repo, 0.45).unwrap();
        let det = d.classify_model(&dummy_model(4, 0));
        assert!(det.is_attack());
        assert_eq!(det.family(), Some(AttackFamily::FlushReload));
        assert_eq!(det.best_score(), 1.0);
    }

    #[test]
    fn dissimilar_model_is_benign() {
        let mut repo = ModelRepository::new();
        repo.add_model(AttackFamily::PrimeProbe, "m", dummy_model(20, 0));
        let d = Detector::new(repo, 0.45).unwrap();
        let det = d.classify_model(&dummy_model(3, 1));
        assert!(!det.is_attack(), "score {}", det.best_score());
    }

    #[test]
    fn best_entry_wins_classification() {
        let mut repo = ModelRepository::new();
        repo.add_model(AttackFamily::PrimeProbe, "pp", dummy_model(10, 1));
        repo.add_model(AttackFamily::FlushReload, "fr", dummy_model(4, 0));
        let d = Detector::new(repo, 0.1).unwrap();
        let det = d.classify_model(&dummy_model(4, 0));
        assert_eq!(det.family(), Some(AttackFamily::FlushReload));
        assert_eq!(det.scores.len(), 2);
        assert_eq!(det.best_entry().map(|e| &*e.poc), Some("fr"));
    }

    #[test]
    fn pruned_scan_matches_naive_best() {
        let repo = repo4();
        let d = Detector::new(repo.clone(), 0.2).unwrap();
        let target = dummy_model(5, 0);
        let naive_best = repo
            .entries()
            .iter()
            .map(|e| similarity_score(&target, &e.model))
            .fold(f64::NEG_INFINITY, f64::max);
        let det = d.classify_model(&target);
        assert_eq!(det.best_score(), naive_best);
        assert!(det.best_entry().unwrap().exact);
        // Pruned entries report upper bounds at or above their true score.
        for (e, repo_entry) in det.scores.iter().zip(repo.entries()) {
            let true_score = similarity_score(&target, &repo_entry.model);
            if e.exact {
                assert_eq!(e.score, true_score);
            } else {
                assert!(e.score >= true_score);
            }
        }
    }

    #[test]
    fn seeded_scan_matches_unseeded_bitwise() {
        let mut d = Detector::new(repo4(), 0.2).unwrap();
        for indexed in [false, true] {
            if indexed {
                d.set_index(d.build_index()).unwrap();
            }
            for (t, marker) in [(1usize, 0u64), (4, 0), (5, 1), (10, 1)] {
                let target = dummy_model(t, marker);
                let want = d.scan_best(&target, None).unwrap();
                // Seed with the true winner's exact distance (the case a
                // streaming session produces), and with every other
                // entry's exact distance (a stale tracked entry after the
                // winner changed): all must reproduce the unseeded result
                // bit for bit.
                for i in 0..d.repository().len() {
                    let exact = crate::similarity::model_distance(
                        &target,
                        &d.repository().entries()[i].model,
                    );
                    let got = d.scan_best_seeded(&target, Some((i, exact)), None).unwrap();
                    let (wi, wd) = want.unwrap();
                    let (gi, gd) = got.unwrap();
                    assert_eq!(wi, gi, "indexed={indexed} t={t} marker={marker} seed={i}");
                    assert_eq!(
                        wd.to_bits(),
                        gd.to_bits(),
                        "indexed={indexed} t={t} marker={marker} seed={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_scan_is_exact_everywhere() {
        let repo = repo4();
        let d = Detector::new(repo.clone(), 0.2).unwrap();
        let target = dummy_model(5, 1);
        let det = d.classify_model_full(&target);
        for (e, repo_entry) in det.scores.iter().zip(repo.entries()) {
            assert!(e.exact);
            assert_eq!(e.score, similarity_score(&target, &repo_entry.model));
        }
    }

    #[test]
    fn jobs_scan_matches_serial() {
        let d = Detector::new(repo4(), 0.2).unwrap();
        for n in [0, 1, 3, 5, 12] {
            for marker in [0, 1] {
                let target = dummy_model(n, marker);
                let serial = d.classify_model(&target);
                let parallel = d.classify_model_jobs(&target, 3);
                assert_eq!(serial.best, parallel.best);
                assert_eq!(serial.best_score(), parallel.best_score());
                assert_eq!(serial.family(), parallel.family());
                // Phase 2 renders from the merged best distance alone, so
                // the full per-entry score list is identical too.
                assert_eq!(serial.scores, parallel.scores);
            }
        }
    }

    #[test]
    fn indexed_scan_is_byte_identical_to_linear() {
        let repo = repo4();
        let linear = Detector::new(repo.clone(), 0.2).unwrap();
        let mut indexed = Detector::new(repo, 0.2).unwrap();
        indexed.set_index(indexed.build_index()).unwrap();
        assert!(indexed.index().is_some());
        for n in [0, 1, 3, 5, 12] {
            for marker in [0, 1] {
                let target = dummy_model(n, marker);
                let a = detection_json("t", &linear.classify_model(&target)).to_string();
                let b = detection_json("t", &indexed.classify_model(&target)).to_string();
                assert_eq!(a, b, "indexed scan diverged (n={n}, marker={marker})");
                for jobs in [2, 3] {
                    let j = detection_json("t", &indexed.classify_model_jobs(&target, jobs))
                        .to_string();
                    assert_eq!(
                        a, j,
                        "indexed jobs={jobs} diverged (n={n}, marker={marker})"
                    );
                }
            }
        }
    }

    #[test]
    fn stale_index_is_rejected() {
        let mut small = ModelRepository::new();
        small.add_model(AttackFamily::FlushReload, "fr", dummy_model(4, 0));
        let other = Detector::new(small, 0.2).unwrap();
        let mut d = Detector::new(repo4(), 0.2).unwrap();
        assert_eq!(d.set_index(other.build_index()), Err(IndexMismatch));
        assert!(d.index().is_none(), "a rejected index must not stick");
        assert!(d.set_index(d.build_index()).is_ok());
    }

    #[test]
    fn batch_matches_serial() {
        let d = Detector::new(repo4(), 0.2).unwrap();
        let targets: Vec<CstBbs> = (0..7)
            .map(|i| dummy_model(i % 5 + 1, i as u64 % 2))
            .collect();
        let serial: Vec<Detection> = targets.iter().map(|t| d.classify_model(t)).collect();
        let batched = d.classify_batch(&targets, 4);
        assert_eq!(serial.len(), batched.len());
        for (s, b) in serial.iter().zip(&batched) {
            assert_eq!(s.best, b.best);
            assert_eq!(s.best_score(), b.best_score());
            assert_eq!(s.family(), b.family());
        }
    }

    #[test]
    fn bad_threshold_is_rejected_not_a_panic() {
        for t in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = Detector::new(ModelRepository::new(), t)
                .err()
                .unwrap_or_else(|| panic!("threshold {t} must be rejected"));
            assert!(err.to_string().contains("out of range"), "{err}");
        }
        assert!(Detector::new(ModelRepository::new(), 0.0).is_ok());
        assert!(Detector::new(ModelRepository::new(), 1.0).is_ok());
    }

    #[test]
    fn deadline_scan_matches_serial_or_aborts() {
        let d = Detector::new(repo4(), 0.2).unwrap();
        let target = dummy_model(5, 0);
        // A generous deadline yields the exact same detection.
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let serial = d.classify_model(&target);
        let timed = d.classify_model_deadline(&target, far).expect("in time");
        assert_eq!(serial.best, timed.best);
        assert_eq!(serial.best_score(), timed.best_score());
        assert_eq!(serial.scores, timed.scores);
        // An already-passed deadline aborts before any entry.
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            d.classify_model_deadline(&target, past).err(),
            Some(DeadlineExceeded)
        );
        // The detector still works after an aborted scan.
        let again = d.classify_model(&target);
        assert_eq!(serial.best_score(), again.best_score());
    }

    #[test]
    fn detection_json_is_stable_and_complete() {
        let d = Detector::new(repo4(), 0.2).unwrap();
        let det = d.classify_model(&dummy_model(4, 0));
        let json = detection_json("target", &det);
        let text = json.to_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed, json, "rendering round-trips");
        assert_eq!(parsed.get("program").and_then(Json::as_str), Some("target"));
        assert!(parsed.get("attack").is_some());
        assert!(parsed.get("threshold").and_then(Json::as_f64).is_some());
        match parsed.get("scores") {
            Some(Json::Arr(scores)) => assert_eq!(scores.len(), det.scores.len()),
            other => panic!("scores must be an array: {other:?}"),
        }
    }
}
