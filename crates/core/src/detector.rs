//! The model repository and the similarity-based detector/classifier
//! (Section III-B.3).

use std::fmt;

use sca_attacks::AttackFamily;
use sca_cpu::Victim;
use sca_isa::Program;

use crate::cst::CstBbs;
use crate::modeling::{build_model, ModelError, ModelingConfig};
use crate::similarity::similarity_score;

/// One PoC model in the repository.
#[derive(Debug, Clone)]
pub struct RepoEntry {
    /// The attack family this PoC belongs to.
    pub family: AttackFamily,
    /// The PoC's name (e.g. `"FR-IAIK"`).
    pub name: String,
    /// Its attack behavior model.
    pub model: CstBbs,
}

/// A repository of attack behavior models built from PoCs of known attacks.
#[derive(Debug, Clone, Default)]
pub struct ModelRepository {
    entries: Vec<RepoEntry>,
}

impl ModelRepository {
    /// An empty repository.
    pub fn new() -> ModelRepository {
        ModelRepository::default()
    }

    /// Add a prebuilt model.
    pub fn add_model(&mut self, family: AttackFamily, name: impl Into<String>, model: CstBbs) {
        self.entries.push(RepoEntry {
            family,
            name: name.into(),
            model,
        });
    }

    /// Model a PoC program and add the result.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the modeling pipeline.
    pub fn add_poc(
        &mut self,
        family: AttackFamily,
        program: &Program,
        victim: &Victim,
        config: &ModelingConfig,
    ) -> Result<(), ModelError> {
        let outcome = build_model(program, victim, config)?;
        self.add_model(family, program.name(), outcome.cst_bbs);
        Ok(())
    }

    /// The stored entries.
    pub fn entries(&self) -> &[RepoEntry] {
        &self.entries
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Extend<RepoEntry> for ModelRepository {
    fn extend<I: IntoIterator<Item = RepoEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

/// The outcome of classifying one target program.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Similarity score against every repository entry, in entry order.
    pub scores: Vec<(String, AttackFamily, f64)>,
    /// The best-scoring entry (name, family, score), if any entry exists.
    pub best: Option<(String, AttackFamily, f64)>,
    /// The detection threshold used.
    pub threshold: f64,
}

impl Detection {
    /// Whether the target is classified as an attack (best score clears the
    /// threshold).
    pub fn is_attack(&self) -> bool {
        self.best
            .as_ref()
            .is_some_and(|(_, _, s)| *s >= self.threshold)
    }

    /// The predicted attack family, or `None` for benign.
    pub fn family(&self) -> Option<AttackFamily> {
        if self.is_attack() {
            self.best.as_ref().map(|(_, f, _)| *f)
        } else {
            None
        }
    }

    /// The best similarity score (0.0 for an empty repository).
    pub fn best_score(&self) -> f64 {
        self.best.as_ref().map_or(0.0, |(_, _, s)| *s)
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.family() {
            Some(fam) => write!(f, "ATTACK {fam} (score {:.2}%)", self.best_score() * 100.0),
            None => write!(f, "benign (best score {:.2}%)", self.best_score() * 100.0),
        }
    }
}

/// The SCAGuard detector: a model repository plus a similarity threshold.
#[derive(Debug, Clone)]
pub struct Detector {
    repo: ModelRepository,
    threshold: f64,
}

impl Detector {
    /// The default similarity threshold.
    ///
    /// The paper uses 45%, the middle of *its* Fig.-5 plateau (30%–60%).
    /// On this reproduction's substrate the similarity scale is compressed
    /// (models are tens of blocks rather than thousands of x86 blocks),
    /// shifting the >90% plateau of the reproduced Fig. 5 to roughly
    /// 20%–30%. The default sits at that plateau's lower edge, which keeps
    /// recall on the far-variant tasks (E3/E4) where the compressed scale
    /// bites hardest, at a benign false-positive rate (1.25% at paper
    /// scale) below the 3.36% the paper reports; see EXPERIMENTS.md for
    /// the sweep.
    pub const DEFAULT_THRESHOLD: f64 = 0.20;

    /// Create a detector.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(repo: ModelRepository, threshold: f64) -> Detector {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold out of range: {threshold}"
        );
        Detector { repo, threshold }
    }

    /// The repository backing this detector.
    pub fn repository(&self) -> &ModelRepository {
        &self.repo
    }

    /// The detection threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Classify a prebuilt target model.
    pub fn classify_model(&self, target: &CstBbs) -> Detection {
        let scores: Vec<(String, AttackFamily, f64)> = self
            .repo
            .entries()
            .iter()
            .map(|e| {
                let mut sp = sca_telemetry::span("pipeline.compare.dtw");
                let score = similarity_score(target, &e.model);
                if sp.is_recording() {
                    let cells = (target.len() * e.model.len()) as u64;
                    sp.attr("poc", e.name.as_str());
                    sp.attr("family", format!("{:?}", e.family));
                    sp.attr("cells", cells);
                    sp.attr("score", score);
                    sca_telemetry::counter("dtw.comparisons", 1);
                    sca_telemetry::counter("dtw.cells", cells);
                }
                (e.name.clone(), e.family, score)
            })
            .collect();
        let best = scores
            .iter()
            .cloned()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
        Detection {
            scores,
            best,
            threshold: self.threshold,
        }
    }

    /// Model `program` and classify it.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the modeling pipeline.
    pub fn classify(
        &self,
        program: &Program,
        victim: &Victim,
        config: &ModelingConfig,
    ) -> Result<Detection, ModelError> {
        let mut sp = sca_telemetry::span("detect");
        sp.attr("program", program.name());
        sp.attr("threshold", self.threshold);
        let outcome = build_model(program, victim, config)?;
        let detection = self.classify_model(&outcome.cst_bbs);
        if sp.is_recording() {
            sp.attr(
                "verdict",
                if detection.is_attack() { "attack" } else { "benign" },
            );
            if let Some((name, family, score)) = &detection.best {
                sp.attr("best_poc", name.as_str());
                sp.attr("best_family", format!("{family:?}"));
                sp.attr("best_score", *score);
            }
            // Best score per family, one attribute each.
            for family in AttackFamily::ALL {
                let best = detection
                    .scores
                    .iter()
                    .filter(|(_, f, _)| *f == family)
                    .map(|(_, _, s)| *s)
                    .fold(f64::NEG_INFINITY, f64::max);
                if best.is_finite() {
                    sp.attr(&format!("score.{family:?}"), best);
                }
            }
        }
        Ok(detection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{Cst, CstStep};

    fn dummy_model(n: usize, marker: u64) -> CstBbs {
        (0..n)
            .map(|i| CstStep {
                bb_addr: marker + i as u64,
                norm_insts: vec![sca_isa::NormInst::nullary(if marker == 0 {
                    "nop"
                } else {
                    "halt"
                })],
                cst: Cst::identity(),
                first_seen: i as u64,
            })
            .collect()
    }

    #[test]
    fn empty_repo_classifies_benign() {
        let d = Detector::new(ModelRepository::new(), 0.45);
        let det = d.classify_model(&dummy_model(3, 0));
        assert!(!det.is_attack());
        assert_eq!(det.family(), None);
        assert_eq!(det.best_score(), 0.0);
    }

    #[test]
    fn identical_model_scores_one() {
        let mut repo = ModelRepository::new();
        repo.add_model(AttackFamily::FlushReload, "m", dummy_model(4, 0));
        let d = Detector::new(repo, 0.45);
        let det = d.classify_model(&dummy_model(4, 0));
        assert!(det.is_attack());
        assert_eq!(det.family(), Some(AttackFamily::FlushReload));
        assert_eq!(det.best_score(), 1.0);
    }

    #[test]
    fn dissimilar_model_is_benign() {
        let mut repo = ModelRepository::new();
        repo.add_model(AttackFamily::PrimeProbe, "m", dummy_model(20, 0));
        let d = Detector::new(repo, 0.45);
        let det = d.classify_model(&dummy_model(3, 1));
        assert!(!det.is_attack(), "score {}", det.best_score());
    }

    #[test]
    fn best_entry_wins_classification() {
        let mut repo = ModelRepository::new();
        repo.add_model(AttackFamily::PrimeProbe, "pp", dummy_model(10, 1));
        repo.add_model(AttackFamily::FlushReload, "fr", dummy_model(4, 0));
        let d = Detector::new(repo, 0.1);
        let det = d.classify_model(&dummy_model(4, 0));
        assert_eq!(det.family(), Some(AttackFamily::FlushReload));
        assert_eq!(det.scores.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_threshold_panics() {
        let _ = Detector::new(ModelRepository::new(), 1.5);
    }
}
