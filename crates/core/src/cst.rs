//! CST-BBS: the attack behavior model (Definitions 4 and 5).

use std::fmt;

use sca_cache::CacheState;
use sca_isa::NormInst;

/// A cache state transition `S --b--> S'` (Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cst {
    /// The cache state before executing the block.
    pub before: CacheState,
    /// The cache state after executing the block.
    pub after: CacheState,
}

impl Cst {
    /// The magnitude of cache change across this transition:
    /// `P = (|AO - AO'| + |IO - IO'|) / 2` (Section III-B.1).
    pub fn change(&self) -> f64 {
        self.before.change_to(&self.after)
    }

    /// The identity transition from the canonical measurement state
    /// (no cache effect).
    pub fn identity() -> Cst {
        Cst {
            before: CacheState::full_other(),
            after: CacheState::full_other(),
        }
    }
}

impl fmt::Display for Cst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.before, self.after)
    }
}

/// One step of a CST-BBS: a basic block with its normalized instruction
/// sequence and measured cache state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct CstStep {
    /// Text address of the block's first instruction (for diagnostics).
    pub bb_addr: u64,
    /// The block's instructions after imm/mem/reg normalization.
    pub norm_insts: Vec<NormInst>,
    /// The block's measured cache state transition.
    pub cst: Cst,
    /// First cycle at which the block executed (`u64::MAX` if it comes
    /// from a restored path and never ran).
    pub first_seen: u64,
}

/// A cache state transition enhanced basic block sequence (Definition 5) —
/// the attack behavior model SCAGuard builds per program and compares with
/// dynamic time warping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CstBbs {
    steps: Vec<CstStep>,
}

impl CstBbs {
    /// Build a model from steps; steps are kept in the order given
    /// (callers sort by first-execution timestamp when flattening).
    pub fn new(steps: Vec<CstStep>) -> CstBbs {
        CstBbs { steps }
    }

    /// The steps in sequence order.
    pub fn steps(&self) -> &[CstStep] {
        &self.steps
    }

    /// Number of steps (basic blocks) in the model.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the model has no steps (no attack-relevant blocks found).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total instruction count across all steps.
    pub fn inst_count(&self) -> usize {
        self.steps.iter().map(|s| s.norm_insts.len()).sum()
    }
}

impl fmt::Display for CstBbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CST-BBS({} blocks, {} insts)",
            self.len(),
            self.inst_count()
        )
    }
}

impl FromIterator<CstStep> for CstBbs {
    fn from_iter<I: IntoIterator<Item = CstStep>>(iter: I) -> CstBbs {
        CstBbs {
            steps: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cache::CacheState;

    #[test]
    fn identity_cst_has_zero_change() {
        assert_eq!(Cst::identity().change(), 0.0);
    }

    #[test]
    fn change_magnitude() {
        let c = Cst {
            before: CacheState::full_other(),
            after: CacheState::new(0.3, 0.7),
        };
        assert!((c.change() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn cst_bbs_accessors() {
        let step = CstStep {
            bb_addr: 0x40_0000,
            norm_insts: vec![],
            cst: Cst::identity(),
            first_seen: 0,
        };
        let m: CstBbs = vec![step.clone(), step].into_iter().collect();
        assert_eq!(m.len(), 2);
        assert_eq!(m.inst_count(), 0);
        assert!(!m.is_empty());
        assert!(CstBbs::default().is_empty());
    }
}
