//! Model-repository persistence.
//!
//! The paper deploys SCAGuard "at the server cluster as a guard": PoCs are
//! modeled once and the repository is reused for every security check.
//! This module gives the repository a durable form — a line-oriented,
//! versioned text format chosen over a binary one so repositories can be
//! inspected and diffed:
//!
//! ```text
//! scaguard-repo v1
//! entry FR-F FR-IAIK
//! step 401000 123 0.000000 1.000000 0.000000 0.750000
//! inst mov reg, imm
//! inst clflush mem
//! ...
//! end
//! ```

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use sca_attacks::AttackFamily;
use sca_cache::CacheState;
use sca_isa::NormInst;

use crate::cst::{Cst, CstBbs, CstStep};
use crate::detector::ModelRepository;
use crate::index::{EntryPivots, RepoIndex};

const MAGIC: &str = "scaguard-repo v1";
const CACHE_MAGIC: &str = "scaguard-modelcache v1";
const INDEX_MAGIC: &str = "scaguard-index v1";

/// Errors from loading or saving a repository / model-cache file.
///
/// Both variants carry the file's path whenever the failure came through
/// one of the filesystem entry points ([`load_repository`],
/// [`save_repository`], [`load_model_cache`], [`save_model_cache`]), so a
/// truncated or corrupted file reports *which* file broke, the 1-based
/// line, and the reason. Parsing from a string (e.g.
/// [`ModelRepository::from_text`]) has no path to report.
#[derive(Debug)]
pub enum LoadRepoError {
    /// The file could not be read or written.
    Io {
        /// The file involved, when known.
        path: Option<PathBuf>,
        /// The underlying filesystem error.
        error: std::io::Error,
    },
    /// The content is not a valid repository / model cache (with the
    /// offending 1-based line and a description).
    Parse {
        /// The file involved, when known.
        path: Option<PathBuf>,
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl LoadRepoError {
    /// Attach the originating file to an error that does not have one
    /// yet (string-level parse errors bubbling out of a file load).
    fn with_path(self, p: &Path) -> LoadRepoError {
        match self {
            LoadRepoError::Io { path: None, error } => LoadRepoError::Io {
                path: Some(p.to_path_buf()),
                error,
            },
            LoadRepoError::Parse {
                path: None,
                line,
                message,
            } => LoadRepoError::Parse {
                path: Some(p.to_path_buf()),
                line,
                message,
            },
            already_annotated => already_annotated,
        }
    }

    /// The offending 1-based line, for parse errors.
    pub fn line(&self) -> Option<usize> {
        match self {
            LoadRepoError::Parse { line, .. } => Some(*line),
            LoadRepoError::Io { .. } => None,
        }
    }

    /// The file involved, when the error came through a filesystem entry
    /// point.
    pub fn path(&self) -> Option<&Path> {
        match self {
            LoadRepoError::Io { path, .. } | LoadRepoError::Parse { path, .. } => path.as_deref(),
        }
    }
}

impl fmt::Display for LoadRepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadRepoError::Io {
                path: Some(p),
                error,
            } => write!(f, "cannot access `{}`: {error}", p.display()),
            LoadRepoError::Io { path: None, error } => {
                write!(f, "cannot read repository: {error}")
            }
            LoadRepoError::Parse {
                path: Some(p),
                line,
                message,
            } => write!(f, "{}:{line}: {message}", p.display()),
            LoadRepoError::Parse {
                path: None,
                line,
                message,
            } => write!(f, "bad repository at line {line}: {message}"),
        }
    }
}

impl Error for LoadRepoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadRepoError::Io { error, .. } => Some(error),
            LoadRepoError::Parse { .. } => None,
        }
    }
}

fn perr(line: usize, message: impl Into<String>) -> LoadRepoError {
    LoadRepoError::Parse {
        path: None,
        line,
        message: message.into(),
    }
}

/// Append one model's `step`/`inst` lines — the record body shared by the
/// repository and model-cache formats.
fn write_steps(out: &mut String, model: &CstBbs) {
    for step in model.steps() {
        out.push_str(&format!(
            "step {:x} {} {:.6} {:.6} {:.6} {:.6}\n",
            step.bb_addr,
            step.first_seen,
            step.cst.before.ao,
            step.cst.before.io,
            step.cst.after.ao,
            step.cst.after.io,
        ));
        for inst in &step.norm_insts {
            out.push_str(&format!("inst {inst}\n"));
        }
    }
}

/// One model's `step`/`inst` lines as text — a canonical, byte-stable
/// rendering of a [`CstBbs`] (used by exactness tests and benches to
/// compare models byte-for-byte).
pub fn model_text(model: &CstBbs) -> String {
    let mut out = String::new();
    write_steps(&mut out, model);
    out
}

/// Parse one `step` record body into a [`CstStep`] (instructions are
/// appended by subsequent `inst` records).
fn parse_step(rest: &str, line_no: usize) -> Result<CstStep, LoadRepoError> {
    let fields: Vec<&str> = rest.split_whitespace().collect();
    if fields.len() != 6 {
        return Err(perr(line_no, "step needs 6 fields"));
    }
    let bb_addr = u64::from_str_radix(fields[0], 16)
        .map_err(|e| perr(line_no, format!("bad address: {e}")))?;
    let first_seen: u64 = fields[1]
        .parse()
        .map_err(|e| perr(line_no, format!("bad timestamp: {e}")))?;
    let nums: Vec<f64> = fields[2..]
        .iter()
        .map(|f| f.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| perr(line_no, format!("bad occupancy: {e}")))?;
    if nums.iter().any(|n| !(0.0..=1.0).contains(n)) {
        return Err(perr(line_no, "occupancy out of [0, 1]"));
    }
    Ok(CstStep {
        bb_addr,
        first_seen,
        norm_insts: Vec::new(),
        cst: Cst {
            before: CacheState::new(nums[0], nums[1]),
            after: CacheState::new(nums[2], nums[3]),
        },
    })
}

/// Parse one `inst` record body.
fn parse_inst(rest: &str, line_no: usize) -> Result<NormInst, LoadRepoError> {
    rest.parse().map_err(|e| perr(line_no, format!("{e}")))
}

/// Serialize a repository to the versioned text format.
pub fn repository_to_string(repo: &ModelRepository) -> String {
    let mut out = String::from(MAGIC);
    out.push('\n');
    for entry in repo.entries() {
        out.push_str(&format!("entry {} {}\n", entry.family.abbrev(), entry.name));
        write_steps(&mut out, &entry.model);
        out.push_str("end\n");
    }
    out
}

/// Parse a repository from the text format.
///
/// # Errors
///
/// Returns [`LoadRepoError::Parse`] with the offending line for any
/// malformed content (wrong magic, unknown family, bad numbers, steps
/// outside an entry, truncated entries).
pub fn repository_from_str(text: &str) -> Result<ModelRepository, LoadRepoError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == MAGIC => {}
        Some((_, first)) => return Err(perr(1, format!("expected `{MAGIC}`, got `{first}`"))),
        None => return Err(perr(1, "empty file")),
    }

    let mut repo = ModelRepository::new();
    let mut current: Option<(AttackFamily, String, Vec<CstStep>)> = None;
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kind {
            "entry" => {
                if current.is_some() {
                    return Err(perr(line_no, "entry inside an unterminated entry"));
                }
                let (abbrev, name) = rest
                    .split_once(' ')
                    .ok_or_else(|| perr(line_no, "entry needs `<family> <name>`"))?;
                let family = AttackFamily::from_abbrev(abbrev)
                    .ok_or_else(|| perr(line_no, format!("unknown family `{abbrev}`")))?;
                current = Some((family, name.to_string(), Vec::new()));
            }
            "step" => {
                let (_, _, steps) = current
                    .as_mut()
                    .ok_or_else(|| perr(line_no, "step outside an entry"))?;
                steps.push(parse_step(rest, line_no)?);
            }
            "inst" => {
                let (_, _, steps) = current
                    .as_mut()
                    .ok_or_else(|| perr(line_no, "inst outside an entry"))?;
                let step = steps
                    .last_mut()
                    .ok_or_else(|| perr(line_no, "inst before any step"))?;
                step.norm_insts.push(parse_inst(rest, line_no)?);
            }
            "end" => {
                let (family, name, steps) = current
                    .take()
                    .ok_or_else(|| perr(line_no, "end outside an entry"))?;
                repo.add_model(family, name, CstBbs::new(steps));
            }
            other => return Err(perr(line_no, format!("unknown record `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(perr(text.lines().count(), "unterminated entry"));
    }
    Ok(repo)
}

/// Write a repository to `path`.
///
/// # Errors
///
/// Returns [`LoadRepoError::Io`] on filesystem errors.
pub fn save_repository(
    repo: &ModelRepository,
    path: impl AsRef<Path>,
) -> Result<(), LoadRepoError> {
    let path = path.as_ref();
    fs::write(path, repository_to_string(repo)).map_err(|error| LoadRepoError::Io {
        path: Some(path.to_path_buf()),
        error,
    })
}

/// Read a repository from `path`.
///
/// # Errors
///
/// Returns [`LoadRepoError::Io`] on filesystem errors and
/// [`LoadRepoError::Parse`] on malformed content. Both carry `path`, so
/// a truncated or corrupted file names the file, the line, and the
/// reason.
pub fn load_repository(path: impl AsRef<Path>) -> Result<ModelRepository, LoadRepoError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|error| LoadRepoError::Io {
        path: Some(path.to_path_buf()),
        error,
    })?;
    repository_from_str(&text).map_err(|e| e.with_path(path))
}

/// Serialize a content-addressed model cache to the versioned text
/// format. Each entry is a `(canonical key, model)` pair:
///
/// ```text
/// scaguard-modelcache v1
/// model
/// key <canonical key, one line>
/// step 401000 123 0.000000 1.000000 0.000000 0.750000
/// inst clflush mem
/// ...
/// end
/// ```
///
/// The content hash is NOT stored: loaders recompute it from the
/// canonical key, so a file produced by a different (or corrupted)
/// hasher can never alias a foreign entry.
pub fn model_cache_to_string<'a>(
    entries: impl IntoIterator<Item = (&'a str, &'a CstBbs)>,
) -> String {
    let mut out = String::from(CACHE_MAGIC);
    out.push('\n');
    for (key, model) in entries {
        debug_assert!(!key.contains('\n'), "canonical keys are single-line");
        out.push_str("model\nkey ");
        out.push_str(key);
        out.push('\n');
        write_steps(&mut out, model);
        out.push_str("end\n");
    }
    out
}

/// Parse a model cache from the text format, returning
/// `(canonical key, model)` pairs in file order.
///
/// # Errors
///
/// Returns [`LoadRepoError::Parse`] with the offending line for any
/// malformed content (wrong magic, missing keys, bad numbers, records
/// outside a `model` block, truncated blocks).
pub fn model_cache_from_str(text: &str) -> Result<Vec<(String, CstBbs)>, LoadRepoError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == CACHE_MAGIC => {}
        Some((_, first)) => {
            return Err(perr(1, format!("expected `{CACHE_MAGIC}`, got `{first}`")))
        }
        None => return Err(perr(1, "empty file")),
    }

    let mut entries = Vec::new();
    let mut current: Option<(Option<String>, Vec<CstStep>)> = None;
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kind {
            "model" => {
                if current.is_some() {
                    return Err(perr(line_no, "model inside an unterminated model"));
                }
                current = Some((None, Vec::new()));
            }
            "key" => {
                let (key, steps) = current
                    .as_mut()
                    .ok_or_else(|| perr(line_no, "key outside a model"))?;
                if key.is_some() {
                    return Err(perr(line_no, "duplicate key"));
                }
                if !steps.is_empty() {
                    return Err(perr(line_no, "key after steps"));
                }
                if rest.is_empty() {
                    return Err(perr(line_no, "empty key"));
                }
                *key = Some(rest.to_string());
            }
            "step" => {
                let (_, steps) = current
                    .as_mut()
                    .ok_or_else(|| perr(line_no, "step outside a model"))?;
                steps.push(parse_step(rest, line_no)?);
            }
            "inst" => {
                let (_, steps) = current
                    .as_mut()
                    .ok_or_else(|| perr(line_no, "inst outside a model"))?;
                let step = steps
                    .last_mut()
                    .ok_or_else(|| perr(line_no, "inst before any step"))?;
                step.norm_insts.push(parse_inst(rest, line_no)?);
            }
            "end" => {
                let (key, steps) = current
                    .take()
                    .ok_or_else(|| perr(line_no, "end outside a model"))?;
                let key = key.ok_or_else(|| perr(line_no, "model without a key"))?;
                entries.push((key, CstBbs::new(steps)));
            }
            other => return Err(perr(line_no, format!("unknown record `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(perr(text.lines().count(), "unterminated model"));
    }
    Ok(entries)
}

/// Write a model cache to `path`.
///
/// # Errors
///
/// Returns [`LoadRepoError::Io`] on filesystem errors.
pub fn save_model_cache<'a>(
    entries: impl IntoIterator<Item = (&'a str, &'a CstBbs)>,
    path: impl AsRef<Path>,
) -> Result<(), LoadRepoError> {
    let path = path.as_ref();
    fs::write(path, model_cache_to_string(entries)).map_err(|error| LoadRepoError::Io {
        path: Some(path.to_path_buf()),
        error,
    })
}

/// Read a model cache from `path`.
///
/// # Errors
///
/// Returns [`LoadRepoError::Io`] on filesystem errors and
/// [`LoadRepoError::Parse`] on malformed content. Both carry `path`, so
/// a truncated or corrupted cache names the file, the line, and the
/// reason.
pub fn load_model_cache(path: impl AsRef<Path>) -> Result<Vec<(String, CstBbs)>, LoadRepoError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|error| LoadRepoError::Io {
        path: Some(path.to_path_buf()),
        error,
    })?;
    model_cache_from_str(&text).map_err(|e| e.with_path(path))
}

/// Serialize a repository index to the versioned text format:
///
/// ```text
/// scaguard-index v1
/// fingerprint 0123456789abcdef
/// pivots 2
/// pivot
/// inst clflush mem
/// ...
/// end
/// pivot
/// ...
/// end
/// entries 5
/// entry 12
/// levs 0 3 7
/// levs 1 4 9
/// end
/// ...
/// ```
///
/// Every number is an integer (the fingerprint in hex, everything else
/// decimal), so the format round-trips byte-for-byte: no float
/// formatting is involved. Each `entry` block carries exactly one
/// ascending `levs` line per pivot.
pub fn index_to_string(index: &RepoIndex) -> String {
    let mut out = String::from(INDEX_MAGIC);
    out.push('\n');
    out.push_str(&format!("fingerprint {:016x}\n", index.fingerprint));
    out.push_str(&format!("pivots {}\n", index.pivots.len()));
    for pivot in &index.pivots {
        out.push_str("pivot\n");
        for inst in pivot {
            out.push_str(&format!("inst {inst}\n"));
        }
        out.push_str("end\n");
    }
    out.push_str(&format!("entries {}\n", index.entries.len()));
    for entry in &index.entries {
        out.push_str(&format!("entry {}\n", entry.max_len));
        for levs in &entry.levs {
            out.push_str("levs");
            for v in levs {
                out.push_str(&format!(" {v}"));
            }
            out.push('\n');
        }
        out.push_str("end\n");
    }
    out
}

/// Pull the next non-blank line, or report a truncation at end of file.
fn take_line<'a>(
    lines: &[(usize, &'a str)],
    pos: &mut usize,
    eof_line: usize,
    what: &str,
) -> Result<(usize, &'a str), LoadRepoError> {
    if *pos < lines.len() {
        let got = lines[*pos];
        *pos += 1;
        Ok(got)
    } else {
        Err(perr(eof_line, format!("truncated index: {what} expected")))
    }
}

/// Parse a repository index from the text format.
///
/// # Errors
///
/// Returns [`LoadRepoError::Parse`] with the offending line for any
/// malformed content (wrong magic, bad fingerprint, mismatched pivot or
/// entry counts, a `levs` line that is not sorted ascending, truncated
/// or trailing records). Stale-but-well-formed indexes parse fine here;
/// staleness is caught by [`RepoIndex::matches`] when the index is
/// attached to a repository.
pub fn index_from_str(text: &str) -> Result<RepoIndex, LoadRepoError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let eof_line = text.lines().count().max(1);
    let mut pos = 0usize;

    let (line_no, first) = take_line(&lines, &mut pos, eof_line, "header")?;
    if first != INDEX_MAGIC {
        return Err(perr(
            line_no,
            format!("expected `{INDEX_MAGIC}`, got `{first}`"),
        ));
    }

    let (line_no, line) = take_line(&lines, &mut pos, eof_line, "fingerprint")?;
    let rest = line.strip_prefix("fingerprint ").ok_or_else(|| {
        perr(
            line_no,
            format!("expected `fingerprint <hex>`, got `{line}`"),
        )
    })?;
    let fingerprint = u64::from_str_radix(rest.trim(), 16)
        .map_err(|e| perr(line_no, format!("bad fingerprint: {e}")))?;

    let (line_no, line) = take_line(&lines, &mut pos, eof_line, "pivot count")?;
    let rest = line
        .strip_prefix("pivots ")
        .ok_or_else(|| perr(line_no, format!("expected `pivots <count>`, got `{line}`")))?;
    let pivot_count: usize = rest
        .trim()
        .parse()
        .map_err(|e| perr(line_no, format!("bad pivot count: {e}")))?;

    let mut pivots = Vec::new();
    for _ in 0..pivot_count {
        let (line_no, line) = take_line(&lines, &mut pos, eof_line, "pivot")?;
        if line != "pivot" {
            return Err(perr(line_no, format!("expected `pivot`, got `{line}`")));
        }
        let mut seq = Vec::new();
        loop {
            let (line_no, line) = take_line(&lines, &mut pos, eof_line, "`inst` or `end`")?;
            if line == "end" {
                break;
            }
            let rest = line
                .strip_prefix("inst ")
                .ok_or_else(|| perr(line_no, format!("expected `inst` or `end`, got `{line}`")))?;
            seq.push(parse_inst(rest, line_no)?);
        }
        pivots.push(seq);
    }

    let (line_no, line) = take_line(&lines, &mut pos, eof_line, "entry count")?;
    let rest = line
        .strip_prefix("entries ")
        .ok_or_else(|| perr(line_no, format!("expected `entries <count>`, got `{line}`")))?;
    let entry_count: usize = rest
        .trim()
        .parse()
        .map_err(|e| perr(line_no, format!("bad entry count: {e}")))?;

    let mut entries = Vec::new();
    for _ in 0..entry_count {
        let (line_no, line) = take_line(&lines, &mut pos, eof_line, "entry")?;
        let rest = line
            .strip_prefix("entry ")
            .ok_or_else(|| perr(line_no, format!("expected `entry <max_len>`, got `{line}`")))?;
        let max_len: u32 = rest
            .trim()
            .parse()
            .map_err(|e| perr(line_no, format!("bad max_len: {e}")))?;
        let mut levs = Vec::with_capacity(pivot_count);
        for _ in 0..pivot_count {
            let (line_no, line) = take_line(&lines, &mut pos, eof_line, "levs")?;
            let rest = line
                .strip_prefix("levs")
                .filter(|r| r.is_empty() || r.starts_with(' '))
                .ok_or_else(|| {
                    perr(
                        line_no,
                        format!("expected one `levs` line per pivot, got `{line}`"),
                    )
                })?;
            let vals: Vec<u32> = rest
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .map_err(|e| perr(line_no, format!("bad levs value: {e}")))?;
            if !vals.windows(2).all(|w| w[0] <= w[1]) {
                return Err(perr(line_no, "levs not sorted ascending"));
            }
            levs.push(vals);
        }
        let (line_no, line) = take_line(&lines, &mut pos, eof_line, "end")?;
        if line != "end" {
            return Err(perr(line_no, format!("expected `end`, got `{line}`")));
        }
        entries.push(EntryPivots { max_len, levs });
    }

    if pos < lines.len() {
        let (line_no, line) = lines[pos];
        return Err(perr(line_no, format!("trailing content `{line}`")));
    }
    Ok(RepoIndex::from_parts(fingerprint, pivots, entries))
}

/// Write a repository index to `path`.
///
/// # Errors
///
/// Returns [`LoadRepoError::Io`] on filesystem errors.
pub fn save_index(index: &RepoIndex, path: impl AsRef<Path>) -> Result<(), LoadRepoError> {
    let path = path.as_ref();
    fs::write(path, index_to_string(index)).map_err(|error| LoadRepoError::Io {
        path: Some(path.to_path_buf()),
        error,
    })
}

/// Read a repository index from `path`.
///
/// # Errors
///
/// Returns [`LoadRepoError::Io`] on filesystem errors and
/// [`LoadRepoError::Parse`] on malformed content. Both carry `path`, so
/// a truncated or corrupted index names the file, the line, and the
/// reason. Callers should treat any error as "rebuild the index from
/// the repository" — the sidecar is a cache, never the source of truth.
pub fn load_index(path: impl AsRef<Path>) -> Result<RepoIndex, LoadRepoError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|error| LoadRepoError::Io {
        path: Some(path.to_path_buf()),
        error,
    })?;
    index_from_str(&text).map_err(|e| e.with_path(path))
}

/// The conventional sidecar location for a repository's index:
/// the repository path with `.idx` appended to the file name
/// (`repo.txt` → `repo.txt.idx`), so the pair travels together.
pub fn index_sidecar_path(repo_path: impl AsRef<Path>) -> PathBuf {
    let repo_path = repo_path.as_ref();
    let mut name = repo_path
        .file_name()
        .map(std::ffi::OsString::from)
        .unwrap_or_default();
    name.push(".idx");
    repo_path.with_file_name(name)
}

impl ModelRepository {
    /// Serialize to the versioned text format (see [`repository_to_string`]).
    pub fn to_text(&self) -> String {
        repository_to_string(self)
    }

    /// Parse from the versioned text format.
    ///
    /// # Errors
    ///
    /// See [`repository_from_str`].
    pub fn from_text(text: &str) -> Result<ModelRepository, LoadRepoError> {
        repository_from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_isa::NormOperand;

    fn sample_repo() -> ModelRepository {
        let step = |addr: u64, change: f64| CstStep {
            bb_addr: addr,
            first_seen: addr / 4,
            norm_insts: vec![
                NormInst::binary("mov", NormOperand::Reg, NormOperand::Imm),
                NormInst::unary("clflush", NormOperand::Mem),
                NormInst::nullary("vyield"),
            ],
            cst: Cst {
                before: CacheState::full_other(),
                after: CacheState::new(change, 1.0 - change),
            },
        };
        let mut repo = ModelRepository::new();
        repo.add_model(
            AttackFamily::FlushReload,
            "FR-IAIK",
            CstBbs::new(vec![step(0x40_0000, 0.25), step(0x40_0040, 0.5)]),
        );
        repo.add_model(
            AttackFamily::SpectrePrimeProbe,
            "Spectre-PP-Trippel",
            CstBbs::new(vec![step(0x40_0100, 0.125)]),
        );
        repo
    }

    fn entries_equal(a: &crate::RepoEntry, b: &crate::RepoEntry) -> bool {
        a.family == b.family && a.name == b.name && a.model == b.model
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let repo = sample_repo();
        let text = repo.to_text();
        let loaded = ModelRepository::from_text(&text).expect("parse");
        assert_eq!(repo.len(), loaded.len());
        for (a, b) in repo.entries().iter().zip(loaded.entries()) {
            assert!(entries_equal(a, b), "{} differs", a.name);
        }
    }

    #[test]
    fn file_roundtrip() {
        let repo = sample_repo();
        let dir = std::env::temp_dir().join("scaguard-persist-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("repo.txt");
        save_repository(&repo, &path).expect("save");
        let loaded = load_repository(&path).expect("load");
        assert_eq!(loaded.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed_content() {
        assert!(ModelRepository::from_text("").is_err());
        assert!(ModelRepository::from_text("not a repo\n").is_err());
        let bad_family = format!("{MAGIC}\nentry XX-F name\nend\n");
        assert!(ModelRepository::from_text(&bad_family).is_err());
        let stray_step = format!("{MAGIC}\nstep 0 0 0 1 0 1\n");
        assert!(ModelRepository::from_text(&stray_step).is_err());
        let unterminated = format!("{MAGIC}\nentry FR-F x\n");
        assert!(ModelRepository::from_text(&unterminated).is_err());
        let bad_occupancy = format!("{MAGIC}\nentry FR-F x\nstep 0 0 2.0 0 0 1\nend\n");
        assert!(ModelRepository::from_text(&bad_occupancy).is_err());
        let bad_inst = format!("{MAGIC}\nentry FR-F x\nstep 0 0 0 1 0 1\ninst frob reg\nend\n");
        assert!(ModelRepository::from_text(&bad_inst).is_err());
    }

    #[test]
    fn model_cache_roundtrip() {
        let repo = sample_repo();
        let entries: Vec<(&str, &CstBbs)> = vec![
            ("key-a | cfg {sets: 64}", &repo.entries()[0].model),
            ("key-b | cfg {sets: 128}", &repo.entries()[1].model),
        ];
        let text = model_cache_to_string(entries.iter().copied());
        let loaded = model_cache_from_str(&text).expect("parse");
        assert_eq!(loaded.len(), 2);
        for ((key, model), (lkey, lmodel)) in entries.iter().zip(&loaded) {
            assert_eq!(*key, lkey);
            assert_eq!(*model, lmodel);
        }
    }

    #[test]
    fn model_cache_rejects_malformed_content() {
        assert!(model_cache_from_str("").is_err());
        assert!(model_cache_from_str("not a cache\n").is_err());
        let no_key = format!("{CACHE_MAGIC}\nmodel\nend\n");
        assert!(model_cache_from_str(&no_key).is_err());
        let stray_step = format!("{CACHE_MAGIC}\nstep 0 0 0 1 0 1\n");
        assert!(model_cache_from_str(&stray_step).is_err());
        let unterminated = format!("{CACHE_MAGIC}\nmodel\nkey k\n");
        assert!(model_cache_from_str(&unterminated).is_err());
        let dup_key = format!("{CACHE_MAGIC}\nmodel\nkey a\nkey b\nend\n");
        assert!(model_cache_from_str(&dup_key).is_err());
        let key_after_step = format!("{CACHE_MAGIC}\nmodel\nstep 0 0 0 1 0 1\nkey a\nend\n");
        assert!(model_cache_from_str(&key_after_step).is_err());
        let empty = model_cache_from_str(CACHE_MAGIC).expect("empty cache ok");
        assert!(empty.is_empty());
    }

    /// Load each corrupt body from a real file and assert the error names
    /// the file, the 1-based line, and the reason.
    fn assert_file_error(
        tag: &str,
        body: &str,
        want_line: usize,
        want_reason: &str,
        load: impl Fn(&Path) -> Option<LoadRepoError>,
    ) {
        let dir = std::env::temp_dir().join(format!("scaguard-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join(format!("{tag}.txt"));
        std::fs::write(&path, body).expect("write corrupt file");
        let err = load(&path).unwrap_or_else(|| panic!("{tag}: corrupt file must not load"));
        assert_eq!(
            err.path(),
            Some(path.as_path()),
            "{tag}: error names the file"
        );
        assert_eq!(
            err.line(),
            Some(want_line),
            "{tag}: error names the line: {err}"
        );
        let text = err.to_string();
        assert!(
            text.contains(&path.display().to_string()),
            "{tag}: display includes the path: {text}"
        );
        assert!(
            text.contains(&format!(":{want_line}:")),
            "{tag}: display includes the line: {text}"
        );
        assert!(
            text.contains(want_reason),
            "{tag}: display includes the reason `{want_reason}`: {text}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_repository_files_report_file_line_and_reason() {
        let load = |p: &Path| load_repository(p).err();
        // Corrupted header.
        assert_file_error("repo-header", "scaguard-repo v999\n", 1, "expected", load);
        // Short record: a step line missing fields.
        let short = format!("{MAGIC}\nentry FR-F x\nstep 0 0 0 1\nend\n");
        assert_file_error("repo-short-step", &short, 3, "step needs 6 fields", load);
        // Bad integer in a step.
        let bad_int = format!("{MAGIC}\nentry FR-F x\nstep zz!! 0 0 1 0 1\nend\n");
        assert_file_error("repo-bad-int", &bad_int, 3, "bad address", load);
        let bad_ts = format!("{MAGIC}\nentry FR-F x\nstep 0 -4 0 1 0 1\nend\n");
        assert_file_error("repo-bad-ts", &bad_ts, 3, "bad timestamp", load);
        // Truncated file: entry never terminated.
        let truncated = format!("{MAGIC}\nentry FR-F x\nstep 0 0 0 1 0 1\n");
        assert_file_error("repo-truncated", &truncated, 3, "unterminated entry", load);
    }

    #[test]
    fn corrupt_model_cache_files_report_file_line_and_reason() {
        let load = |p: &Path| load_model_cache(p).err();
        assert_file_error(
            "cache-header",
            "scaguard-modelcache v9\n",
            1,
            "expected",
            load,
        );
        let short = format!("{CACHE_MAGIC}\nmodel\nkey k\nstep 0 0\nend\n");
        assert_file_error("cache-short-step", &short, 4, "step needs 6 fields", load);
        let bad_occ = format!("{CACHE_MAGIC}\nmodel\nkey k\nstep 0 0 0 1 0 nine\nend\n");
        assert_file_error("cache-bad-num", &bad_occ, 4, "bad occupancy", load);
        let truncated = format!("{CACHE_MAGIC}\nmodel\nkey k\n");
        assert_file_error("cache-truncated", &truncated, 3, "unterminated model", load);
    }

    #[test]
    fn index_roundtrip_is_byte_stable() {
        use crate::index::IndexConfig;
        let repo = sample_repo();
        let index = RepoIndex::build(&repo, &IndexConfig::default());
        let text = index_to_string(&index);
        let loaded = index_from_str(&text).expect("parse");
        assert!(loaded.matches(&repo), "loaded index still fits the repo");
        assert_eq!(
            index_to_string(&loaded),
            text,
            "serialize -> parse -> serialize is byte-identical"
        );

        let dir = std::env::temp_dir().join("scaguard-persist-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("repo.txt");
        let sidecar = index_sidecar_path(&path);
        assert_eq!(sidecar, dir.join("repo.txt.idx"));
        save_index(&index, &sidecar).expect("save");
        let from_disk = load_index(&sidecar).expect("load");
        assert_eq!(index_to_string(&from_disk), text);
        std::fs::remove_file(&sidecar).ok();
    }

    #[test]
    fn corrupt_index_files_report_file_line_and_reason() {
        let load = |p: &Path| load_index(p).err();
        // Corrupted header.
        assert_file_error("index-header", "scaguard-index v999\n", 1, "expected", load);
        // Fingerprint that is not hex.
        let bad_fp = format!("{INDEX_MAGIC}\nfingerprint zz!!\npivots 0\nentries 0\n");
        assert_file_error("index-bad-fp", &bad_fp, 2, "bad fingerprint", load);
        // Entry promising more levs lines than pivots provide.
        let short_levs = format!(
            "{INDEX_MAGIC}\nfingerprint 00\npivots 2\npivot\nend\npivot\nend\n\
             entries 1\nentry 3\nlevs 0 1\nend\n"
        );
        assert_file_error(
            "index-short-levs",
            &short_levs,
            11,
            "expected one `levs` line per pivot",
            load,
        );
        // A levs line out of order.
        let unsorted = format!(
            "{INDEX_MAGIC}\nfingerprint 00\npivots 1\npivot\nend\n\
             entries 1\nentry 3\nlevs 5 2\nend\n"
        );
        assert_file_error("index-unsorted", &unsorted, 8, "not sorted", load);
        // Truncated: fewer entries than declared.
        let truncated =
            format!("{INDEX_MAGIC}\nfingerprint 00\npivots 0\nentries 2\nentry 3\nend\n");
        assert_file_error("index-truncated", &truncated, 6, "truncated index", load);
        // Trailing garbage after a complete index.
        let trailing = format!("{INDEX_MAGIC}\nfingerprint 00\npivots 0\nentries 0\nextra\n");
        assert_file_error("index-trailing", &trailing, 5, "trailing content", load);
    }

    #[test]
    fn missing_file_error_names_the_file() {
        let path = Path::new("/nonexistent/scaguard-no-such-file.repo");
        let err = load_repository(path).expect_err("missing file");
        assert_eq!(err.path(), Some(path));
        assert!(err.to_string().contains("scaguard-no-such-file"));
        // String-level parsing has no path to report.
        let err = ModelRepository::from_text("nope").expect_err("bad text");
        assert_eq!(err.path(), None);
    }

    #[test]
    fn loaded_repository_scores_identically() {
        use crate::similarity_score;
        let repo = sample_repo();
        let loaded = ModelRepository::from_text(&repo.to_text()).expect("parse");
        let target = &repo.entries()[0].model;
        let s1 = similarity_score(target, &repo.entries()[1].model);
        let s2 = similarity_score(target, &loaded.entries()[1].model);
        assert_eq!(s1, s2);
        assert_eq!(similarity_score(target, &loaded.entries()[0].model), 1.0);
    }
}
