//! Sharded repository scans with a deterministic scatter-gather merge.
//!
//! A SCAGuard detection is a pure function of (target model, enrolled
//! repository, threshold), and the repository scan's phase 2 renders
//! per-entry scores from the best distance alone (DESIGN.md §15) — which
//! makes the scan embarrassingly shardable. A [`ShardedDetector`] splits
//! the repository into contiguous index ranges, gives each range its own
//! [`Detector`] (with its own in-memory [`RepoIndex`] slice), and
//! classifies by:
//!
//! 1. **scatter** — every shard runs phase 0+1 over its slice
//!    ([`Shard::scan_best`]), reporting its exact local winner as a
//!    *global* `(index, distance)` pair;
//! 2. **merge** — [`ShardedDetector::merge`] picks the winner with the
//!    scan's own tie-break discipline: minimum distance, **later** global
//!    index on ties — the same rule `scan_target`, the `--jobs` pool, and
//!    the batch builder use, stated in a form independent of which shard
//!    answered first;
//! 3. **gather** — every shard renders its slice against the merged best
//!    distance ([`Detector::render_slice`]); only the owning shard marks
//!    the winner exact, and the concatenation in shard order *is*
//!    repository order.
//!
//! The composition is byte-identical to the unsharded scan at any shard
//! count: a tie candidate's DTW always runs to completion (the
//! early-abandon row minimum is a lower bound on the final distance, so
//! a distance equal to the cutoff never abandons), hence every shard's
//! winner is an exact distance no matter how the repository was cut, and
//! phase 2 consults only deterministic lower bounds of (target, entry).
//! The property test in `crates/core/tests/shard.rs` asserts this across
//! shard counts, repository sizes, empty shards, and fully-pruned shards.

use std::time::Instant;

use crate::cst::CstBbs;
use crate::detector::{Detection, Detector, InvalidThreshold, ModelRepository};
use crate::engine::DeadlineExceeded;

/// One contiguous slice of a sharded repository: a detector over the
/// slice plus the slice's offset into the full repository, so local
/// entry indices translate to global ones.
#[derive(Debug, Clone)]
pub struct Shard {
    detector: Detector,
    offset: usize,
}

impl Shard {
    /// The detector over this shard's slice.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// This shard's first entry's index in the full repository.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of entries in this shard (empty shards are legal: a
    /// repository smaller than the shard count leaves trailing shards
    /// with nothing to scan).
    pub fn len(&self) -> usize {
        self.detector.repository().len()
    }

    /// Whether this shard holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Phase 0+1 over this shard's slice: the exact local winner as a
    /// **global** `(index, distance)` pair, or `None` for an empty
    /// shard. Feed the per-shard results to [`ShardedDetector::merge`].
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] when `deadline` passes mid-scan.
    pub fn scan_best(
        &self,
        target: &CstBbs,
        deadline: Option<Instant>,
    ) -> Result<Option<(usize, f64)>, DeadlineExceeded> {
        self.scan_best_seeded(target, None, deadline)
    }

    /// [`Shard::scan_best`] with a pre-scan cutoff seed (a **global**
    /// `(index, exact distance)` pair; see
    /// [`Detector::scan_best_seeded`]). A seed owned by another shard is
    /// ignored — only the owning shard may start from it, because a
    /// shard's winner must remain an exact distance of one of *its*
    /// entries for [`ShardedDetector::merge`] to stay correct.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] when `deadline` passes mid-scan.
    pub fn scan_best_seeded(
        &self,
        target: &CstBbs,
        seed: Option<(usize, f64)>,
        deadline: Option<Instant>,
    ) -> Result<Option<(usize, f64)>, DeadlineExceeded> {
        let local = seed.and_then(|(i, d)| {
            i.checked_sub(self.offset)
                .filter(|&l| l < self.len())
                .map(|l| (l, d))
        });
        Ok(self
            .detector
            .scan_best_seeded(target, local, deadline)?
            .map(|(i, d)| (self.offset + i, d)))
    }
}

/// A repository split into contiguous shards, classified by deterministic
/// scatter-gather (see the module docs).
#[derive(Debug)]
pub struct ShardedDetector {
    shards: Vec<Shard>,
    threshold: f64,
    len: usize,
}

impl ShardedDetector {
    /// Split `repo` into `shards` contiguous slices (`shards` is clamped
    /// to at least 1) and build a per-shard [`Detector`], each with a
    /// freshly built in-memory index over its slice. Shard `s` owns
    /// entries `[s * ceil(n / shards), (s + 1) * ceil(n / shards))`
    /// clipped to `n`; trailing shards may be empty.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidThreshold`] when `threshold` is outside `[0, 1]`.
    pub fn new(
        repo: ModelRepository,
        threshold: f64,
        shards: usize,
    ) -> Result<ShardedDetector, InvalidThreshold> {
        let shards = shards.max(1);
        let n = repo.len();
        let chunk = n.div_ceil(shards).max(1);
        let mut out = Vec::with_capacity(shards);
        for s in 0..shards {
            let lo = (s * chunk).min(n);
            let hi = ((s + 1) * chunk).min(n);
            let mut slice = ModelRepository::new();
            slice.extend(repo.entries()[lo..hi].iter().cloned());
            let mut detector = Detector::new(slice, threshold)?;
            detector
                .set_index(detector.build_index())
                .expect("a freshly built index matches its repository");
            out.push(Shard {
                detector,
                offset: lo,
            });
        }
        Ok(ShardedDetector {
            shards: out,
            threshold,
            len: n,
        })
    }

    /// Wrap an existing detector as a single shard, preserving whatever
    /// index it already carries (e.g. a loaded sidecar) — the one-shard
    /// sharded detector behaves exactly like the detector itself.
    pub fn from_detector(detector: Detector) -> ShardedDetector {
        let threshold = detector.threshold();
        let len = detector.repository().len();
        ShardedDetector {
            shards: vec![Shard {
                detector,
                offset: 0,
            }],
            threshold,
            len,
        }
    }

    /// The shards, in repository order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards (at least 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the full repository is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The detection threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Merge per-shard winners (global `(index, distance)` pairs from
    /// [`Shard::scan_best`], in any order) deterministically: minimum
    /// distance, **later** global index on ties — the exact rule the
    /// unsharded scan applies, so the merged winner is the unsharded
    /// winner regardless of shard count or answer order.
    pub fn merge(per_shard: &[Option<(usize, f64)>]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for &candidate in per_shard {
            if let Some((i, d)) = candidate {
                if best.is_none_or(|(bi, bd)| d < bd || (d == bd && i > bi)) {
                    best = Some((i, d));
                }
            }
        }
        best
    }

    /// Gather: render every shard's slice against the merged best and
    /// concatenate in shard (= repository) order. `merged` is the result
    /// of [`ShardedDetector::merge`]; `None` means the repository is
    /// empty and the detection is benign with no scores.
    pub fn detection_from(&self, target: &CstBbs, merged: Option<(usize, f64)>) -> Detection {
        let Some((best_idx, best_d)) = merged else {
            debug_assert!(self.len == 0);
            return Detection {
                scores: Vec::new(),
                best: None,
                threshold: self.threshold,
            };
        };
        let mut scores = Vec::with_capacity(self.len);
        for shard in &self.shards {
            let exact = best_idx
                .checked_sub(shard.offset)
                .filter(|&local| local < shard.len());
            scores.extend(shard.detector.render_slice(target, best_d, exact));
        }
        Detection {
            scores,
            best: Some(best_idx),
            threshold: self.threshold,
        }
    }

    /// Classify a prebuilt target model: scatter over every shard (here
    /// serially — a serving layer runs the scatter on its own pools),
    /// merge, gather. Byte-identical to an unsharded
    /// [`Detector::classify_model`] over the same repository.
    pub fn classify_model(&self, target: &CstBbs) -> Detection {
        let per_shard: Vec<Option<(usize, f64)>> = self
            .shards
            .iter()
            .map(|s| s.scan_best(target, None).expect("no deadline was given"))
            .collect();
        self.detection_from(target, Self::merge(&per_shard))
    }

    /// Scatter-and-merge only: every shard scans its slice with the
    /// optional seed routed to its owning shard, and the winners merge
    /// under the scan's own tie rule. Bitwise identical to an unseeded
    /// scatter (see [`Detector::scan_best_seeded`] for why); this is the
    /// per-increment step of a streaming session, which keeps the
    /// previous increment's winner as the seed and renders full scores
    /// only when a caller asks.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] when `deadline` passes mid-scan.
    pub fn scan_best_seeded(
        &self,
        target: &CstBbs,
        seed: Option<(usize, f64)>,
        deadline: Option<Instant>,
    ) -> Result<Option<(usize, f64)>, DeadlineExceeded> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            per_shard.push(shard.scan_best_seeded(target, seed, deadline)?);
        }
        Ok(Self::merge(&per_shard))
    }

    /// [`ShardedDetector::classify_model`] under a wall-clock deadline,
    /// checked before every entry of every shard's scan.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] when `deadline` passes mid-scan.
    pub fn classify_model_deadline(
        &self,
        target: &CstBbs,
        deadline: Instant,
    ) -> Result<Detection, DeadlineExceeded> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            per_shard.push(shard.scan_best(target, Some(deadline))?);
        }
        Ok(self.detection_from(target, Self::merge(&per_shard)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{Cst, CstStep};
    use crate::detector::detection_json;
    use sca_attacks::AttackFamily;

    fn dummy_model(n: usize, marker: u64) -> CstBbs {
        (0..n)
            .map(|i| CstStep {
                bb_addr: marker + i as u64,
                norm_insts: vec![sca_isa::NormInst::nullary(if marker == 0 {
                    "nop"
                } else {
                    "halt"
                })],
                cst: Cst::identity(),
                first_seen: i as u64,
            })
            .collect()
    }

    fn repo(n: usize) -> ModelRepository {
        let mut repo = ModelRepository::new();
        for i in 0..n {
            let family = AttackFamily::ALL[i % AttackFamily::ALL.len()];
            repo.add_model(
                family,
                format!("m{i:02}"),
                dummy_model(i % 6 + 1, i as u64 % 2),
            );
        }
        repo
    }

    #[test]
    fn shard_layout_is_contiguous_and_complete() {
        for n in [0usize, 1, 4, 5, 9] {
            for shards in [1usize, 2, 4, 7] {
                let sd = ShardedDetector::new(repo(n), 0.2, shards).unwrap();
                assert_eq!(sd.shard_count(), shards);
                assert_eq!(sd.len(), n);
                let mut next = 0;
                for shard in sd.shards() {
                    assert_eq!(shard.offset(), next);
                    next += shard.len();
                }
                assert_eq!(next, n, "shards must cover the repository exactly");
            }
        }
    }

    #[test]
    fn sharded_detection_matches_unsharded() {
        for n in [0usize, 1, 3, 8] {
            let unsharded = Detector::new(repo(n), 0.2).unwrap();
            for shards in [1usize, 2, 4, 7] {
                let sd = ShardedDetector::new(repo(n), 0.2, shards).unwrap();
                for (t, marker) in [(1usize, 0u64), (4, 1), (9, 0)] {
                    let target = dummy_model(t, marker);
                    let want = detection_json("t", &unsharded.classify_model(&target)).to_string();
                    let got = detection_json("t", &sd.classify_model(&target)).to_string();
                    assert_eq!(want, got, "n={n} shards={shards} t={t} marker={marker}");
                }
            }
        }
    }

    #[test]
    fn merge_prefers_min_distance_then_later_index() {
        assert_eq!(ShardedDetector::merge(&[]), None);
        assert_eq!(ShardedDetector::merge(&[None, None]), None);
        assert_eq!(
            ShardedDetector::merge(&[Some((0, 2.0)), None, Some((5, 1.0))]),
            Some((5, 1.0))
        );
        // Ties go to the later global index, in any answer order.
        assert_eq!(
            ShardedDetector::merge(&[Some((3, 1.0)), Some((7, 1.0))]),
            Some((7, 1.0))
        );
        assert_eq!(
            ShardedDetector::merge(&[Some((7, 1.0)), Some((3, 1.0))]),
            Some((7, 1.0))
        );
    }

    #[test]
    fn single_shard_wrap_preserves_the_detector() {
        let mut det = Detector::new(repo(5), 0.2).unwrap();
        det.set_index(det.build_index()).unwrap();
        let want = detection_json("t", &det.classify_model(&dummy_model(3, 0))).to_string();
        let sd = ShardedDetector::from_detector(det);
        assert_eq!(sd.shard_count(), 1);
        assert_eq!(sd.len(), 5);
        let got = detection_json("t", &sd.classify_model(&dummy_model(3, 0))).to_string();
        assert_eq!(want, got);
    }

    #[test]
    fn deadline_aborts_or_matches() {
        let sd = ShardedDetector::new(repo(6), 0.2, 3).unwrap();
        let target = dummy_model(4, 0);
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let timed = sd.classify_model_deadline(&target, far).expect("in time");
        let plain = sd.classify_model(&target);
        assert_eq!(plain.best, timed.best);
        assert_eq!(plain.scores, timed.scores);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            sd.classify_model_deadline(&target, past).err(),
            Some(DeadlineExceeded)
        );
    }
}
