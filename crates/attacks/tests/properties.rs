//! Property-based tests: the mutation and obfuscation engines preserve
//! program semantics on arbitrary (bounded) generated programs, not just
//! the hand-picked fixtures. Randomized inputs come from seeded
//! [`SmallRng`] loops so runs are deterministic.

use sca_attacks::mutate::{mutate, MutationConfig};
use sca_attacks::obfuscate::{obfuscate, ObfuscationConfig};
use sca_cpu::{CpuConfig, Machine, Victim};
use sca_isa::rng::SmallRng;
use sca_isa::{AluOp, Cond, Inst, MemRef, Operand, Program, Reg};

const CASES: usize = 48;

/// Committed instructions inside measured timing windows (between the
/// first and second `rdtscp` of each pair, by parity scan).
fn measured_inst_count(p: &Program) -> usize {
    let mut inside = false;
    let mut n = 0;
    for inst in p.insts() {
        if matches!(inst, Inst::Rdtscp { .. }) {
            inside = !inside;
            continue;
        }
        if inside {
            n += 1;
        }
    }
    n
}

fn arb_body_inst(rng: &mut SmallRng) -> Inst {
    let reg = |rng: &mut SmallRng| Reg::from_index(rng.gen_range(0..6usize));
    let slot = |rng: &mut SmallRng| MemRef::abs(0x5000 + i64::from(rng.gen_range(0..64u16)) * 8);
    match rng.gen_range(0..7u32) {
        0 => Inst::MovImm {
            dst: reg(rng),
            imm: rng.gen_range(-50i64..50),
        },
        1 => Inst::MovReg {
            dst: reg(rng),
            src: reg(rng),
        },
        2 => Inst::Load {
            dst: reg(rng),
            addr: slot(rng),
        },
        3 => Inst::Store {
            src: reg(rng),
            addr: slot(rng),
        },
        4 => Inst::Alu {
            op: AluOp::Add,
            dst: reg(rng),
            src: Operand::Imm(rng.gen_range(-9i64..9)),
        },
        5 => Inst::Alu {
            op: AluOp::Xor,
            dst: reg(rng),
            src: Operand::Reg(reg(rng)),
        },
        _ => Inst::Clflush { addr: slot(rng) },
    }
}

/// Structured random programs: a loop skeleton filled with arithmetic and
/// memory traffic, always terminating, storing observable results.
fn arb_program(rng: &mut SmallRng) -> Program {
    let body: Vec<Inst> = (0..rng.gen_range(3..24usize))
        .map(|_| arb_body_inst(rng))
        .collect();
    let trips = rng.gen_range(1i64..6);
    // wrap the body in a counted loop using R7 as the counter
    let mut insts = vec![Inst::MovImm {
        dst: Reg::R7,
        imm: 0,
    }];
    let top = insts.len();
    insts.extend(body);
    insts.push(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R7,
        src: Operand::Imm(1),
    });
    insts.push(Inst::Cmp {
        lhs: Reg::R7,
        rhs: Operand::Imm(trips),
    });
    insts.push(Inst::Br {
        cond: Cond::Lt,
        target: top,
    });
    insts.push(Inst::Halt);
    Program::from_parts("prop", insts, Default::default())
}

/// Observable state after a run: the register file plus the program's
/// absolute memory footprint.
fn observe(p: &Program) -> ([u64; 16], Vec<u64>) {
    let mut m = Machine::new(CpuConfig {
        max_steps: 50_000,
        ..CpuConfig::default()
    });
    let t = m.run(p, &Victim::None).expect("run");
    assert!(t.halted, "generated programs always terminate");
    let mem: Vec<u64> = (0..64).map(|i| m.read_word(0x5000 + i * 8)).collect();
    (*m.registers(), mem)
}

/// Registers the original program uses (mutation junk may touch others).
fn used_mask(p: &Program) -> Vec<bool> {
    sca_attacks::mutate::used_regs(p).to_vec()
}

/// Mutation (without register renaming, so registers stay comparable)
/// preserves the observable state: used registers and the memory
/// footprint.
#[test]
fn mutation_preserves_observable_state() {
    let mut rng = SmallRng::seed_from_u64(0xa77_001);
    for _ in 0..CASES {
        let p = arb_program(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let cfg = MutationConfig {
            rename_regs: false,
            ..MutationConfig::default()
        };
        let q = mutate(&p, seed, &cfg);
        let (regs_p, mem_p) = observe(&p);
        let (regs_q, mem_q) = observe(&q);
        assert_eq!(mem_p, mem_q, "memory footprint must match");
        for (i, used) in used_mask(&p).iter().enumerate() {
            if *used {
                assert_eq!(regs_p[i], regs_q[i], "r{i} diverged under mutation");
            }
        }
    }
}

/// Obfuscation preserves the observable state exactly (it never renames
/// registers and its junk only touches dead ones).
#[test]
fn obfuscation_preserves_observable_state() {
    let mut rng = SmallRng::seed_from_u64(0xa77_002);
    for _ in 0..CASES {
        let p = arb_program(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let q = obfuscate(&p, seed, &ObfuscationConfig::default());
        let (regs_p, mem_p) = observe(&p);
        let (regs_q, mem_q) = observe(&q);
        assert_eq!(mem_p, mem_q, "memory footprint must match");
        for (i, used) in used_mask(&p).iter().enumerate() {
            if *used {
                assert_eq!(regs_p[i], regs_q[i], "r{i} diverged under obfuscation");
            }
        }
    }
}

/// Mutation with renaming still preserves the memory footprint (the
/// register file is permuted, so only memory is comparable).
#[test]
fn renaming_mutation_preserves_memory() {
    let mut rng = SmallRng::seed_from_u64(0xa77_003);
    for _ in 0..CASES {
        let p = arb_program(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let q = mutate(&p, seed, &MutationConfig::default());
        let (_, mem_p) = observe(&p);
        let (_, mem_q) = observe(&q);
        assert_eq!(mem_p, mem_q);
    }
}

/// The obfuscator never pads a measured timing window: wrap each
/// generated loop body in an `rdtscp` pair and check the number of
/// instructions between the pair is unchanged by obfuscation. (An
/// attacker obfuscating their own PoC preserves the timing channel.)
#[test]
fn obfuscation_leaves_timed_windows_untouched() {
    let mut rng = SmallRng::seed_from_u64(0xa77_004);
    for _ in 0..CASES {
        let p = arb_program(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        // splice an rdtscp pair around the loop body (after the counter
        // init, before the halt) so the program has a measured window
        let mut insts: Vec<Inst> = p.insts().to_vec();
        let halt_at = insts.len() - 1;
        insts.insert(halt_at, Inst::Rdtscp { dst: Reg::R9 });
        insts.insert(1, Inst::Rdtscp { dst: Reg::R8 });
        // fix up the loop's backward branch target (everything shifted by
        // the inserted leading rdtscp)
        for inst in &mut insts {
            if let Inst::Br { target, .. } = inst {
                *target += 1;
            }
        }
        let timed = Program::from_parts("prop-timed", insts, Default::default());
        let q = obfuscate(&timed, seed, &ObfuscationConfig::default());
        assert_eq!(
            measured_inst_count(&q),
            measured_inst_count(&timed),
            "junk landed inside the rdtscp window"
        );
    }
}
