//! Property-based tests: the mutation and obfuscation engines preserve
//! program semantics on arbitrary (bounded) generated programs, not just
//! the hand-picked fixtures.

use proptest::prelude::*;

use sca_attacks::mutate::{mutate, MutationConfig};
use sca_attacks::obfuscate::{obfuscate, ObfuscationConfig};
use sca_cpu::{CpuConfig, Machine, Victim};
use sca_isa::{AluOp, Cond, Inst, MemRef, Operand, Program, Reg};

/// Committed instructions inside measured timing windows (between the
/// first and second `rdtscp` of each pair, by parity scan).
fn measured_inst_count(p: &Program) -> usize {
    let mut inside = false;
    let mut n = 0;
    for inst in p.insts() {
        if matches!(inst, Inst::Rdtscp { .. }) {
            inside = !inside;
            continue;
        }
        if inside {
            n += 1;
        }
    }
    n
}

/// Structured random programs: a loop skeleton filled with arithmetic and
/// memory traffic, always terminating, storing observable results.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(
            prop_oneof![
                (0usize..6, -50i64..50).prop_map(|(r, v)| Inst::MovImm {
                    dst: Reg::from_index(r),
                    imm: v
                }),
                (0usize..6, 0usize..6).prop_map(|(a, b)| Inst::MovReg {
                    dst: Reg::from_index(a),
                    src: Reg::from_index(b)
                }),
                (0usize..6, 0u16..64).prop_map(|(r, a)| Inst::Load {
                    dst: Reg::from_index(r),
                    addr: MemRef::abs(0x5000 + i64::from(a) * 8)
                }),
                (0usize..6, 0u16..64).prop_map(|(r, a)| Inst::Store {
                    src: Reg::from_index(r),
                    addr: MemRef::abs(0x5000 + i64::from(a) * 8)
                }),
                (0usize..6, -9i64..9).prop_map(|(r, v)| Inst::Alu {
                    op: AluOp::Add,
                    dst: Reg::from_index(r),
                    src: Operand::Imm(v)
                }),
                (0usize..6, 0usize..6).prop_map(|(a, b)| Inst::Alu {
                    op: AluOp::Xor,
                    dst: Reg::from_index(a),
                    src: Operand::Reg(Reg::from_index(b))
                }),
                (0u16..64).prop_map(|a| Inst::Clflush {
                    addr: MemRef::abs(0x5000 + i64::from(a) * 8)
                }),
            ],
            3..24,
        ),
        1i64..6,
    )
        .prop_map(|(body, trips)| {
            // wrap the body in a counted loop using R7 as the counter
            let mut insts = vec![Inst::MovImm {
                dst: Reg::R7,
                imm: 0,
            }];
            let top = insts.len();
            insts.extend(body);
            insts.push(Inst::Alu {
                op: AluOp::Add,
                dst: Reg::R7,
                src: Operand::Imm(1),
            });
            insts.push(Inst::Cmp {
                lhs: Reg::R7,
                rhs: Operand::Imm(trips),
            });
            insts.push(Inst::Br {
                cond: Cond::Lt,
                target: top,
            });
            insts.push(Inst::Halt);
            Program::from_parts("prop", insts, Default::default())
        })
}

/// Observable state after a run: the register file plus the program's
/// absolute memory footprint.
fn observe(p: &Program) -> ([u64; 16], Vec<u64>) {
    let mut m = Machine::new(CpuConfig {
        max_steps: 50_000,
        ..CpuConfig::default()
    });
    let t = m.run(p, &Victim::None).expect("run");
    assert!(t.halted, "generated programs always terminate");
    let mem: Vec<u64> = (0..64).map(|i| m.read_word(0x5000 + i * 8)).collect();
    (*m.registers(), mem)
}

/// Registers the original program uses (mutation junk may touch others).
fn used_mask(p: &Program) -> Vec<bool> {
    sca_attacks::mutate::used_regs(p).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mutation (without register renaming, so registers stay comparable)
    /// preserves the observable state: used registers and the memory
    /// footprint.
    #[test]
    fn mutation_preserves_observable_state(p in arb_program(), seed in 0u64..1000) {
        let cfg = MutationConfig {
            rename_regs: false,
            ..MutationConfig::default()
        };
        let q = mutate(&p, seed, &cfg);
        let (regs_p, mem_p) = observe(&p);
        let (regs_q, mem_q) = observe(&q);
        prop_assert_eq!(mem_p, mem_q, "memory footprint must match");
        for (i, used) in used_mask(&p).iter().enumerate() {
            if *used {
                prop_assert_eq!(
                    regs_p[i], regs_q[i],
                    "r{} diverged under mutation", i
                );
            }
        }
    }

    /// Obfuscation preserves the observable state exactly (it never renames
    /// registers and its junk only touches dead ones).
    #[test]
    fn obfuscation_preserves_observable_state(p in arb_program(), seed in 0u64..1000) {
        let q = obfuscate(&p, seed, &ObfuscationConfig::default());
        let (regs_p, mem_p) = observe(&p);
        let (regs_q, mem_q) = observe(&q);
        prop_assert_eq!(mem_p, mem_q, "memory footprint must match");
        for (i, used) in used_mask(&p).iter().enumerate() {
            if *used {
                prop_assert_eq!(
                    regs_p[i], regs_q[i],
                    "r{} diverged under obfuscation", i
                );
            }
        }
    }

    /// Mutation with renaming still preserves the memory footprint (the
    /// register file is permuted, so only memory is comparable).
    #[test]
    fn renaming_mutation_preserves_memory(p in arb_program(), seed in 0u64..1000) {
        let q = mutate(&p, seed, &MutationConfig::default());
        let (_, mem_p) = observe(&p);
        let (_, mem_q) = observe(&q);
        prop_assert_eq!(mem_p, mem_q);
    }

    /// The obfuscator never pads a measured timing window: wrap each
    /// generated loop body in an `rdtscp` pair and check the number of
    /// instructions between the pair is unchanged by obfuscation. (An
    /// attacker obfuscating their own PoC preserves the timing channel.)
    #[test]
    fn obfuscation_leaves_timed_windows_untouched(p in arb_program(), seed in 0u64..1000) {
        // splice an rdtscp pair around the loop body (after the counter
        // init, before the halt) so the program has a measured window
        let mut insts: Vec<Inst> = p.insts().to_vec();
        let halt_at = insts.len() - 1;
        insts.insert(halt_at, Inst::Rdtscp { dst: Reg::R9 });
        insts.insert(1, Inst::Rdtscp { dst: Reg::R8 });
        // fix up the loop's backward branch target (everything shifted by
        // the inserted leading rdtscp)
        for inst in &mut insts {
            if let Inst::Br { target, .. } = inst {
                *target += 1;
            }
        }
        let timed = Program::from_parts("prop-timed", insts, Default::default());
        let q = obfuscate(&timed, seed, &ObfuscationConfig::default());
        prop_assert_eq!(
            measured_inst_count(&q),
            measured_inst_count(&timed),
            "junk landed inside the rdtscp window"
        );
    }
}
