//! Memory-layout conventions shared by every generated program.
//!
//! All generators place their data in fixed, disjoint regions so that the
//! cache-set arithmetic of the attacks (eviction sets, prime targets) is
//! predictable and so that no generated program aliases the text segment
//! (`sca_isa::TEXT_BASE = 0x40_0000`) or the victim's private noise region
//! (`0x7000_0000`).

/// Cache line size assumed by all generators (matches the default
/// [`sca_cache::HierarchyConfig`]).
pub const LINE: u64 = 64;

/// Number of LLC sets assumed by generators that need set arithmetic
/// (matches `HierarchyConfig::skylake_like()`).
pub const LLC_SETS: u64 = 1024;

/// LLC associativity assumed by Prime+Probe/Evict+Reload generators.
pub const LLC_WAYS: u64 = 16;

/// Base of the "shared library" region: readable by both attacker and
/// victim, the channel medium of the Flush+Reload family.
pub const SHARED_BASE: u64 = 0x1000_0000;

/// Base of the attacker's private working memory (eviction sets, prime
/// buffers, spectre arrays).
pub const ATTACKER_BASE: u64 = 0x2000_0000;

/// Base of the region where attacks store recovered secret guesses,
/// readable by tests to check that a PoC actually works.
pub const RESULT_BASE: u64 = 0x3000_0000;

/// Base of the region benign programs use for their data.
pub const BENIGN_BASE: u64 = 0x4000_0000;

/// Base of the victim's conflict-address region for Prime+Probe (mapped so
/// that `VICTIM_CONFLICT_BASE + s * LINE` falls in LLC set
/// `set_of(VICTIM_CONFLICT_BASE) + s`).
pub const VICTIM_CONFLICT_BASE: u64 = 0x5000_0000;

/// First LLC set the Prime+Probe attacks monitor. Offset past the sets
/// the program *text* occupies (instruction lines land in LLC sets
/// 0..~16 for our program sizes); priming a set that also holds hot
/// instruction lines would thrash and destroy the probe signal.
pub const MONITOR_SET_BASE: u64 = 40;

/// Calibration lines used by the PoCs' latency-calibration phase
/// (LLC sets 700..708).
pub const CALIBRATION_BASE: u64 = ATTACKER_BASE + 700 * LINE;

/// The address of the w-th member of the eviction/prime set for LLC set
/// index `set`: distinct lines that all map to `set`.
pub fn prime_addr(set: u64, way: u64) -> u64 {
    ATTACKER_BASE + way * LLC_SETS * LINE + set * LINE
}

/// The LLC set index of `addr` under the assumed geometry.
pub fn llc_set(addr: u64) -> u64 {
    (addr / LINE) % LLC_SETS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_addrs_share_a_set_but_not_a_line() {
        let s = 37;
        let addrs: Vec<u64> = (0..LLC_WAYS).map(|w| prime_addr(s, w)).collect();
        for &a in &addrs {
            assert_eq!(llc_set(a), llc_set(prime_addr(s, 0)));
        }
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / LINE).collect();
        lines.dedup();
        assert_eq!(lines.len(), LLC_WAYS as usize);
    }

    #[test]
    fn regions_are_disjoint() {
        let bases = [
            SHARED_BASE,
            ATTACKER_BASE,
            RESULT_BASE,
            BENIGN_BASE,
            VICTIM_CONFLICT_BASE,
        ];
        for (i, &a) in bases.iter().enumerate() {
            for &b in &bases[i + 1..] {
                assert!(a.abs_diff(b) >= 0x1000_0000);
            }
        }
    }

    #[test]
    fn defaults_match_skylake_like_geometry() {
        let h = sca_cache::HierarchyConfig::skylake_like();
        assert_eq!(h.llc.line_size, LINE);
        assert_eq!(h.llc.sets as u64, LLC_SETS);
        assert_eq!(h.llc.ways as u64, LLC_WAYS);
    }
}
