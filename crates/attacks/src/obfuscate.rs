//! Polymorphic obfuscation (evaluation task E4).
//!
//! The paper generates obfuscated attack variants with a polymorphic
//! junk-code technique ("inserted with junk code (e.g., NOP)"), yielding
//! on average 70.49% more basic blocks per sample. This module applies the
//! two standard moves of such engines:
//!
//! * **bogus control flow** (`cmp rX, rX; beq <past junk>` guarding junk
//!   that never executes) in *straight-line* code, inflating the
//!   basic-block count the way OLLVM-style engines do;
//! * **plain junk padding** (NOPs, dead ALU on unused registers) woven
//!   into *loop bodies*, diluting the hot instruction stream.
//!
//! The padding is what defeats rule-based trace matchers like SCADET: the
//! instruction distance across one prime/probe traversal grows past the
//! matcher's fixed window. It is register-only (no memory junk), exactly
//! like NOP-style junk, so the program's memory-access *set* is unchanged
//! — which is why SCAGuard's cache-semantic model survives it.
//!
//! Insertions are placed only at *flags-dead* points (positions from which
//! a `cmp` is reached before any branch on the fall-through path), so the
//! clobbered comparison flags are never observed.

use std::collections::BTreeSet;

use sca_isa::rng::SmallRng;

use sca_cfg::{remove_back_edges, Cfg};
use sca_isa::{AluOp, Cond, Inst, Operand, Program, Reg};

use crate::mutate::used_regs;
use crate::rewrite::{expand_program, EXPANSION_END};

/// Obfuscation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObfuscationConfig {
    /// Target relative increase in basic-block count (the paper reports
    /// ~0.70 on average).
    pub bb_inflation: f64,
    /// Maximum junk instructions per opaque-predicate site.
    pub max_junk: usize,
    /// Probability of padding any given *loop-body* instruction with a
    /// plain junk instruction.
    pub hot_junk_prob: f64,
}

impl Default for ObfuscationConfig {
    fn default() -> ObfuscationConfig {
        ObfuscationConfig {
            bb_inflation: 0.70,
            max_junk: 3,
            hot_junk_prob: 0.30,
        }
    }
}

/// Positions before which the comparison flags are dead: scanning forward
/// from the position on the fall-through path, a `Cmp` appears before any
/// branch, jump, or halt.
fn flags_dead_points(program: &Program) -> Vec<usize> {
    let insts = program.insts();
    let mut dead = Vec::new();
    for i in 0..insts.len() {
        for inst in &insts[i..] {
            match inst {
                Inst::Cmp { .. } => {
                    dead.push(i);
                    break;
                }
                Inst::Br { .. } | Inst::Jmp { .. } | Inst::Halt => break,
                _ => {}
            }
        }
    }
    dead
}

/// Positions inside a *measured timing window*: after an odd number of
/// `rdtscp` instructions, i.e. between the start and stop of a timing
/// pair. An attacker obfuscating their own PoC keeps junk out of these
/// windows — padding the code the attack itself times would shift the
/// measured latencies and destroy the covert channel the attack depends
/// on. (Benign programs rarely read the TSC at all, so this exclusion is
/// a no-op for them.)
fn measured_windows(program: &Program) -> Vec<bool> {
    let mut inside = false;
    program
        .insts()
        .iter()
        .map(|inst| {
            let here = inside;
            if matches!(inst, Inst::Rdtscp { .. }) {
                inside = !inside;
            }
            here
        })
        .collect()
}

/// Maximum instruction span for a loop to count as *inner* (hot): junk is
/// aimed at tight loops, where it dilutes the access stream the most.
const INNER_LOOP_SPAN: usize = 48;

/// Instruction indices inside an *innermost* loop, approximated as the
/// address span between each back edge's target (loop head) and source
/// (latch) when that span is small — exact for the contiguous, reducible
/// loops our generators emit.
fn loop_body_insts(program: &Program, cfg: &Cfg) -> Vec<bool> {
    let dag = remove_back_edges(cfg);
    let mut hot = vec![false; program.len()];
    for &(src, dst) in dag.removed_edges() {
        let head = cfg.block(dst).insts.start.min(cfg.block(src).insts.start);
        let latch_end = cfg.block(src).insts.end.max(cfg.block(dst).insts.end);
        if latch_end - head > INNER_LOOP_SPAN {
            continue;
        }
        for flag in &mut hot[head..latch_end] {
            *flag = true;
        }
    }
    hot
}

/// Obfuscate `program` with opaque predicates (in straight-line code) and
/// loop-body junk padding.
///
/// The result is semantically equivalent: opaque branches are never taken,
/// and junk only writes registers the original program never reads.
pub fn obfuscate(program: &Program, seed: u64, cfg: &ObfuscationConfig) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0bf5_ca7e);
    let cfg_graph = Cfg::build(program);
    let original_bbs = cfg_graph.len();
    // Every opaque predicate adds ~2 blocks (the branch split + the decoy
    // target split).
    let wanted_sites = ((original_bbs as f64 * cfg.bb_inflation) / 2.0).ceil() as usize;

    let hot = loop_body_insts(program, &cfg_graph);
    let measured = measured_windows(program);
    let all_dead = flags_dead_points(program);
    let dead_set: BTreeSet<usize> = all_dead.iter().copied().collect();
    // Bogus-control-flow sites go at cold *block leaders*: the guard and
    // its dead junk slot between existing blocks instead of splitting one.
    let candidates: Vec<usize> = cfg_graph
        .blocks()
        .iter()
        .map(|b| b.insts.start)
        .filter(|&i| !hot[i] && !measured[i] && dead_set.contains(&i))
        .collect();

    let mut sites = BTreeSet::new();
    if !candidates.is_empty() {
        for _ in 0..wanted_sites * 8 {
            if sites.len() >= wanted_sites {
                break;
            }
            sites.insert(candidates[rng.gen_range(0..candidates.len())]);
        }
    }

    let used = used_regs(program);
    let scratch: Vec<Reg> = Reg::ALL
        .iter()
        .copied()
        .filter(|r| !used[r.index()])
        .collect();
    // Any register works for the opaque predicate (cmp r, r is always
    // equal and does not modify r).
    let pred_reg = scratch.first().copied().unwrap_or(Reg::R0);
    let max_junk = cfg.max_junk.max(2);

    let hot_dead: Vec<bool> = {
        let dead: BTreeSet<usize> = all_dead.into_iter().collect();
        (0..program.len())
            .map(|i| hot[i] && !measured[i] && dead.contains(&i))
            .collect()
    };

    fn junk_inst(rng: &mut SmallRng, scratch: &[Reg]) -> Inst {
        if scratch.is_empty() || rng.gen_bool(0.4) {
            Inst::Nop
        } else {
            let r = scratch[rng.gen_range(0..scratch.len())];
            if rng.gen_bool(0.5) {
                Inst::Alu {
                    op: AluOp::Xor,
                    dst: r,
                    src: Operand::Imm(rng.gen_range(1..0xfff)),
                }
            } else {
                Inst::MovImm {
                    dst: r,
                    imm: rng.gen_range(0..0xffff),
                }
            }
        }
    }

    expand_program(
        program,
        format!("{}+obf{seed:x}", program.name()),
        |i, inst| {
            let mut out = Vec::new();
            if sites.contains(&i) {
                // Bogus control flow (cold code only): `cmp r, r` is always
                // equal, so the `beq` always skips the junk — the junk block
                // exists statically (inflating the CFG) but never executes.
                out.push(Inst::Cmp {
                    lhs: pred_reg,
                    rhs: Operand::Reg(pred_reg),
                });
                out.push(Inst::Br {
                    cond: Cond::Eq,
                    // Lands on the original instruction, past the junk.
                    target: EXPANSION_END,
                });
                for _ in 0..rng.gen_range(2..=max_junk) {
                    out.push(junk_inst(&mut rng, &scratch));
                }
            } else if hot_dead[i] && rng.gen_bool(cfg.hot_junk_prob) {
                // Plain padding inside loop bodies: one junk instruction per
                // site — no new blocks, just a diluted instruction stream.
                out.push(junk_inst(&mut rng, &scratch));
            }
            out.push(*inst);
            out
        },
    )
}

/// The relative basic-block inflation of `obf` over `orig`.
pub fn bb_inflation(orig: &Program, obf: &Program) -> f64 {
    let a = Cfg::build(orig).len() as f64;
    let b = Cfg::build(obf).len() as f64;
    (b - a) / a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RESULT_BASE;
    use crate::poc::{flush_reload_iaik, prime_probe_iaik, PocParams};
    use sca_cpu::{CpuConfig, Machine};

    #[test]
    fn obfuscation_inflates_bb_count_near_target() {
        let s = flush_reload_iaik(&PocParams::default());
        let cfg = ObfuscationConfig::default();
        let mut total = 0.0;
        for seed in 0..4 {
            total += bb_inflation(&s.program, &obfuscate(&s.program, seed, &cfg));
        }
        let mean = total / 4.0;
        assert!(
            (0.3..=1.2).contains(&mean),
            "mean inflation {mean} too far from the ~0.70 target"
        );
    }

    #[test]
    fn obfuscated_fr_still_recovers_the_secret() {
        let params = PocParams::default().with_secrets(vec![5, 5, 5, 5]);
        let s = flush_reload_iaik(&params);
        for seed in 0..4 {
            let q = obfuscate(&s.program, seed, &ObfuscationConfig::default());
            let mut m = Machine::new(CpuConfig::default());
            let t = m.run(&q, &s.victim).expect("run");
            assert!(t.halted, "seed {seed}");
            assert_ne!(
                m.read_word(RESULT_BASE + 5 * 8),
                0,
                "obfuscation {seed} broke the attack"
            );
        }
    }

    #[test]
    fn obfuscated_pp_still_detects_the_victim_set() {
        let params = PocParams::default().with_secrets(vec![3, 3, 3, 3]);
        let s = prime_probe_iaik(&params);
        let q = obfuscate(&s.program, 7, &ObfuscationConfig::default());
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&q, &s.victim).expect("run");
        assert!(t.halted);
        assert_ne!(m.read_word(RESULT_BASE + 3 * 8), 0);
    }

    #[test]
    fn obfuscation_is_deterministic_and_seed_sensitive() {
        let s = flush_reload_iaik(&PocParams::default());
        let cfg = ObfuscationConfig::default();
        assert_eq!(
            obfuscate(&s.program, 3, &cfg).insts(),
            obfuscate(&s.program, 3, &cfg).insts()
        );
        assert_ne!(
            obfuscate(&s.program, 3, &cfg).insts(),
            obfuscate(&s.program, 4, &cfg).insts()
        );
    }

    #[test]
    fn hot_junk_lands_in_loops() {
        let s = prime_probe_iaik(&PocParams::default());
        let q = obfuscate(&s.program, 1, &ObfuscationConfig::default());
        assert!(
            q.len() > s.program.len() + 10,
            "padding must add instructions: {} -> {}",
            s.program.len(),
            q.len()
        );
    }

    #[test]
    fn junk_adds_no_memory_operations() {
        let s = flush_reload_iaik(&PocParams::default());
        let q = obfuscate(&s.program, 2, &ObfuscationConfig::default());
        let count = |p: &Program| p.insts().iter().filter(|i| i.is_memory_op()).count();
        assert_eq!(count(&s.program), count(&q), "NOP-style junk only");
    }

    #[test]
    fn flags_dead_points_exclude_live_flag_ranges() {
        use sca_isa::{MemRef, ProgramBuilder};
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0); // 0: dead (cmp at 1 comes first)
        b.cmp_imm(Reg::R0, 3); // 1: dead (itself a cmp)
        b.load(Reg::R1, MemRef::abs(0x1000)); // 2: LIVE (br at 3 before any cmp)
        let l = b.new_label();
        b.br(Cond::Lt, l); // 3: live
        b.bind(l);
        b.halt();
        let p = b.build();
        let dead = flags_dead_points(&p);
        assert!(dead.contains(&0));
        assert!(dead.contains(&1));
        assert!(!dead.contains(&2));
        assert!(!dead.contains(&3));
    }
}
