//! Semantics-preserving code mutation (the paper's `mutate_cpp` stand-in).
//!
//! Table II expands each attack type to 400 variants by code mutation that
//! "retains the attack functionality". The mutator here composes four
//! semantics-preserving transformations, all driven by a seed:
//!
//! 1. **register renaming** — a random permutation applied consistently to
//!    every register reference;
//! 2. **equivalent-instruction substitution** — `add r, k` ⇄ `sub r, -k`
//!    (wrapping arithmetic), `mul r, 2^k` → `shl r, k`;
//! 3. **immediate splitting** — `mov r, k` → `mov r, k-d; add r, d`;
//! 4. **junk insertion** — `nop`s and dead ALU ops on registers the
//!    program never reads;
//! 5. **independent-instruction reordering** — adjacent instructions with
//!    no register, flag, memory, or control dependence swap places.

use sca_isa::rng::{Shuffle, SmallRng};

use sca_isa::{AluOp, Inst, MemRef, Operand, Program, Reg};

use crate::rewrite::expand_program;

/// Mutation intensity knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationConfig {
    /// Probability of junk insertion before any given instruction.
    pub junk_prob: f64,
    /// Probability of splitting a `mov r, imm`.
    pub split_prob: f64,
    /// Probability of substituting an equivalent ALU form.
    pub subst_prob: f64,
    /// Probability of swapping an eligible independent adjacent pair.
    pub swap_prob: f64,
    /// Whether to apply a random register permutation.
    pub rename_regs: bool,
}

impl Default for MutationConfig {
    fn default() -> MutationConfig {
        MutationConfig {
            junk_prob: 0.03,
            split_prob: 0.2,
            subst_prob: 0.3,
            swap_prob: 0.15,
            rename_regs: true,
        }
    }
}

/// Registers read by an instruction (including address computation).
fn reads(inst: &Inst) -> Vec<Reg> {
    let mut out = Vec::new();
    let mem = |m: &MemRef, out: &mut Vec<Reg>| out.extend(m.regs());
    match inst {
        Inst::MovImm { .. } | Inst::Rdtscp { .. } => {}
        Inst::MovReg { src, .. } => out.push(*src),
        Inst::Load { addr, .. } => mem(addr, &mut out),
        Inst::Store { src, addr } => {
            out.push(*src);
            mem(addr, &mut out);
        }
        Inst::Alu { dst, src, .. } => {
            out.push(*dst);
            if let Operand::Reg(r) = src {
                out.push(*r);
            }
        }
        Inst::Cmp { lhs, rhs } => {
            out.push(*lhs);
            if let Operand::Reg(r) = rhs {
                out.push(*r);
            }
        }
        Inst::Clflush { addr } => mem(addr, &mut out),
        _ => {}
    }
    out
}

/// Register written by an instruction, if any.
fn writes(inst: &Inst) -> Option<Reg> {
    match inst {
        Inst::MovImm { dst, .. }
        | Inst::MovReg { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::Alu { dst, .. }
        | Inst::Rdtscp { dst } => Some(*dst),
        _ => None,
    }
}

/// Whether two adjacent instructions can swap without changing semantics:
/// no register/flag/memory/control/timing dependence. Conservative —
/// "no" is always safe.
fn independent(a: &Inst, b: &Inst) -> bool {
    // control flow, flags, timing, and scheduling points never move
    let pinned = |i: &Inst| {
        i.is_terminator()
            || matches!(
                i,
                Inst::Cmp { .. } | Inst::Rdtscp { .. } | Inst::VYield | Inst::Fence { .. }
            )
    };
    if pinned(a) || pinned(b) {
        return false;
    }
    // at most one of the pair may touch memory (conservative aliasing)
    if a.is_memory_op() && b.is_memory_op() {
        return false;
    }
    // register dependences
    let (wa, wb) = (writes(a), writes(b));
    let ra = reads(a);
    let rb = reads(b);
    if let Some(w) = wa {
        if rb.contains(&w) || wb == Some(w) {
            return false;
        }
    }
    if let Some(w) = wb {
        if ra.contains(&w) {
            return false;
        }
    }
    true
}

/// Swap eligible independent adjacent pairs with probability `prob`,
/// skipping positions that are branch targets (their indices are
/// observable through control flow).
fn reorder_pass(program: &Program, rng: &mut SmallRng, prob: f64) -> Program {
    use std::collections::BTreeSet;
    let targets: BTreeSet<usize> = program
        .insts()
        .iter()
        .filter_map(|i| i.branch_target())
        .collect();
    let mut insts: Vec<Inst> = program.insts().to_vec();
    let tags: std::collections::BTreeMap<usize, sca_isa::InstTag> = program.tags().collect();
    let mut new_tags = tags.clone();
    let mut i = 0;
    while i + 1 < insts.len() {
        if !targets.contains(&i)
            && !targets.contains(&(i + 1))
            && independent(&insts[i], &insts[i + 1])
            && rng.gen_bool(prob)
        {
            insts.swap(i, i + 1);
            let (ta, tb) = (tags.get(&i).copied(), tags.get(&(i + 1)).copied());
            match tb {
                Some(t) => {
                    new_tags.insert(i, t);
                }
                None => {
                    new_tags.remove(&i);
                }
            }
            match ta {
                Some(t) => {
                    new_tags.insert(i + 1, t);
                }
                None => {
                    new_tags.remove(&(i + 1));
                }
            }
            i += 2; // non-overlapping swaps
        } else {
            i += 1;
        }
    }
    Program::from_parts(program.name(), insts, new_tags)
}

fn map_reg(r: Reg, perm: &[Reg; 16]) -> Reg {
    perm[r.index()]
}

fn map_mem(m: MemRef, perm: &[Reg; 16]) -> MemRef {
    MemRef {
        base: m.base.map(|r| map_reg(r, perm)),
        index: m.index.map(|r| map_reg(r, perm)),
        ..m
    }
}

fn map_operand(o: Operand, perm: &[Reg; 16]) -> Operand {
    match o {
        Operand::Reg(r) => Operand::Reg(map_reg(r, perm)),
        imm => imm,
    }
}

/// Apply a register permutation to one instruction.
fn rename_inst(inst: &Inst, perm: &[Reg; 16]) -> Inst {
    match *inst {
        Inst::MovImm { dst, imm } => Inst::MovImm {
            dst: map_reg(dst, perm),
            imm,
        },
        Inst::MovReg { dst, src } => Inst::MovReg {
            dst: map_reg(dst, perm),
            src: map_reg(src, perm),
        },
        Inst::Load { dst, addr } => Inst::Load {
            dst: map_reg(dst, perm),
            addr: map_mem(addr, perm),
        },
        Inst::Store { src, addr } => Inst::Store {
            src: map_reg(src, perm),
            addr: map_mem(addr, perm),
        },
        Inst::Alu { op, dst, src } => Inst::Alu {
            op,
            dst: map_reg(dst, perm),
            src: map_operand(src, perm),
        },
        Inst::Cmp { lhs, rhs } => Inst::Cmp {
            lhs: map_reg(lhs, perm),
            rhs: map_operand(rhs, perm),
        },
        Inst::Clflush { addr } => Inst::Clflush {
            addr: map_mem(addr, perm),
        },
        Inst::Rdtscp { dst } => Inst::Rdtscp {
            dst: map_reg(dst, perm),
        },
        other => other,
    }
}

/// Registers referenced (read or written) anywhere in `program`.
pub fn used_regs(program: &Program) -> [bool; 16] {
    let mut used = [false; 16];
    let mark_mem = |m: &MemRef, used: &mut [bool; 16]| {
        for r in m.regs() {
            used[r.index()] = true;
        }
    };
    for inst in program.insts() {
        match inst {
            Inst::MovImm { dst, .. } | Inst::Rdtscp { dst } => used[dst.index()] = true,
            Inst::MovReg { dst, src } => {
                used[dst.index()] = true;
                used[src.index()] = true;
            }
            Inst::Load { dst, addr } => {
                used[dst.index()] = true;
                mark_mem(addr, &mut used);
            }
            Inst::Store { src, addr } => {
                used[src.index()] = true;
                mark_mem(addr, &mut used);
            }
            Inst::Alu { dst, src, .. } => {
                used[dst.index()] = true;
                if let Operand::Reg(r) = src {
                    used[r.index()] = true;
                }
            }
            Inst::Cmp { lhs, rhs } => {
                used[lhs.index()] = true;
                if let Operand::Reg(r) = rhs {
                    used[r.index()] = true;
                }
            }
            Inst::Clflush { addr } => mark_mem(addr, &mut used),
            _ => {}
        }
    }
    used
}

/// Produce a junk instruction sequence that only touches `scratch`
/// registers (dead in the host program) and never the flags.
fn junk_seq(rng: &mut SmallRng, scratch: &[Reg]) -> Vec<Inst> {
    let mut out = Vec::new();
    let n = rng.gen_range(1..3usize);
    for _ in 0..n {
        if scratch.is_empty() || rng.gen_bool(0.4) {
            out.push(Inst::Nop);
        } else {
            let r = scratch[rng.gen_range(0..scratch.len())];
            match rng.gen_range(0..3u32) {
                0 => out.push(Inst::MovImm {
                    dst: r,
                    imm: rng.gen_range(0..0xffff),
                }),
                1 => out.push(Inst::Alu {
                    op: AluOp::Xor,
                    dst: r,
                    src: Operand::Imm(rng.gen_range(1..0xff)),
                }),
                _ => out.push(Inst::Alu {
                    op: AluOp::Add,
                    dst: r,
                    src: Operand::Imm(rng.gen_range(1..0xff)),
                }),
            }
        }
    }
    out
}

/// Substitute an equivalent form for ALU/immediate instructions.
fn substitute(inst: &Inst, rng: &mut SmallRng) -> Option<Inst> {
    match *inst {
        // add r, k  <->  sub r, -k  (wrapping arithmetic makes these equal)
        Inst::Alu {
            op: AluOp::Add,
            dst,
            src: Operand::Imm(k),
        } => Some(Inst::Alu {
            op: AluOp::Sub,
            dst,
            src: Operand::Imm(k.wrapping_neg()),
        }),
        Inst::Alu {
            op: AluOp::Sub,
            dst,
            src: Operand::Imm(k),
        } => Some(Inst::Alu {
            op: AluOp::Add,
            dst,
            src: Operand::Imm(k.wrapping_neg()),
        }),
        // mul r, 2^k -> shl r, k  (and sometimes keep the mul)
        Inst::Alu {
            op: AluOp::Mul,
            dst,
            src: Operand::Imm(k),
        } if k > 0 && (k as u64).is_power_of_two() && rng.gen_bool(0.7) => Some(Inst::Alu {
            op: AluOp::Shl,
            dst,
            src: Operand::Imm((k as u64).trailing_zeros() as i64),
        }),
        Inst::Alu {
            op: AluOp::Shl,
            dst,
            src: Operand::Imm(k),
        } if (0..32).contains(&k) && rng.gen_bool(0.5) => Some(Inst::Alu {
            op: AluOp::Mul,
            dst,
            src: Operand::Imm(1i64 << k),
        }),
        _ => None,
    }
}

/// Mutate `program` with the given seed and intensity. The result is
/// semantically equivalent: it computes the same values, performs the same
/// memory and flush operations, and (for attack programs) retains the
/// attack functionality.
pub fn mutate(program: &Program, seed: u64, cfg: &MutationConfig) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca9_ad01);

    // Register permutation: keep it a bijection over all 16 registers.
    let mut perm = Reg::ALL;
    if cfg.rename_regs {
        perm.shuffle(&mut rng);
    }

    // Scratch registers: unused *after* renaming.
    let renamed_used = {
        let used = used_regs(program);
        let mut out = [false; 16];
        for (i, &u) in used.iter().enumerate() {
            if u {
                out[perm[i].index()] = true;
            }
        }
        out
    };
    let scratch: Vec<Reg> = Reg::ALL
        .iter()
        .copied()
        .filter(|r| !renamed_used[r.index()])
        .collect();

    let reordered = if cfg.swap_prob > 0.0 {
        reorder_pass(program, &mut rng, cfg.swap_prob)
    } else {
        program.clone()
    };
    let program = &reordered;

    let name = format!("{}+mut{seed:x}", program.name());
    expand_program(program, name, |_, inst| {
        let renamed = rename_inst(inst, &perm);
        let core = if rng.gen_bool(cfg.subst_prob) {
            substitute(&renamed, &mut rng).unwrap_or(renamed)
        } else {
            renamed
        };
        let mut out = Vec::new();
        if rng.gen_bool(cfg.junk_prob) {
            out.extend(junk_seq(&mut rng, &scratch));
        }
        match core {
            Inst::MovImm { dst, imm } if rng.gen_bool(cfg.split_prob) => {
                let d = rng.gen_range(1..0x1000i64);
                out.push(Inst::MovImm {
                    dst,
                    imm: imm.wrapping_sub(d),
                });
                out.push(Inst::Alu {
                    op: AluOp::Add,
                    dst,
                    src: Operand::Imm(d),
                });
            }
            other => out.push(other),
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RESULT_BASE;
    use crate::poc::{flush_reload_iaik, PocParams};
    use sca_cpu::{CpuConfig, Machine, Victim};
    use sca_isa::{Cond, ProgramBuilder};

    fn checksum_program() -> Program {
        // computes a value into memory; used to check semantic preservation
        let mut b = ProgramBuilder::new("chk");
        b.mov_imm(Reg::R1, 17);
        b.mov_imm(Reg::R2, 5);
        let top = b.here();
        b.alu(AluOp::Mul, Reg::R1, Reg::R1);
        b.alu_imm(AluOp::And, Reg::R1, 0xffff);
        b.alu_imm(AluOp::Add, Reg::R1, 3);
        b.alu_imm(AluOp::Sub, Reg::R2, 1);
        b.cmp_imm(Reg::R2, 0);
        b.br(Cond::Gt, top);
        b.store(Reg::R1, MemRef::abs(0x9000));
        b.halt();
        b.build()
    }

    fn result_of(p: &Program) -> u64 {
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(p, &Victim::None).expect("run");
        assert!(t.halted, "{} did not halt", p.name());
        m.read_word(0x9000)
    }

    #[test]
    fn mutation_preserves_computation() {
        let p = checksum_program();
        let expected = result_of(&p);
        for seed in 0..20 {
            let q = mutate(&p, seed, &MutationConfig::default());
            assert_eq!(result_of(&q), expected, "seed {seed} broke semantics");
        }
    }

    #[test]
    fn mutation_changes_the_code() {
        let p = checksum_program();
        let q = mutate(&p, 1, &MutationConfig::default());
        assert_ne!(p.insts(), q.insts());
    }

    #[test]
    fn mutants_differ_across_seeds() {
        let p = checksum_program();
        let a = mutate(&p, 1, &MutationConfig::default());
        let b = mutate(&p, 2, &MutationConfig::default());
        assert_ne!(a.insts(), b.insts());
    }

    #[test]
    fn mutation_is_deterministic() {
        let p = checksum_program();
        let a = mutate(&p, 3, &MutationConfig::default());
        let b = mutate(&p, 3, &MutationConfig::default());
        assert_eq!(a.insts(), b.insts());
    }

    #[test]
    fn mutated_attack_still_works() {
        let params = PocParams::default().with_secrets(vec![5, 5, 5, 5]);
        let s = flush_reload_iaik(&params);
        for seed in 0..5 {
            let q = mutate(&s.program, seed, &MutationConfig::default());
            let mut m = Machine::new(CpuConfig::default());
            let t = m.run(&q, &s.victim).expect("run");
            assert!(t.halted);
            assert_ne!(
                m.read_word(RESULT_BASE + 5 * 8),
                0,
                "mutant {seed} lost the attack"
            );
        }
    }

    #[test]
    fn tags_survive_mutation() {
        let s = flush_reload_iaik(&PocParams::default());
        let q = mutate(&s.program, 9, &MutationConfig::default());
        assert!(q.has_attack_tags());
    }

    #[test]
    fn reordering_swaps_independent_pairs_only() {
        // two independent movs followed by a dependent add
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 1); // independent of next
        b.mov_imm(Reg::R2, 2);
        b.alu(AluOp::Add, Reg::R1, Reg::R2); // depends on both
        b.store(Reg::R1, MemRef::abs(0x9000));
        b.halt();
        let p = b.build();
        let mut rng = SmallRng::seed_from_u64(1);
        let q = reorder_pass(&p, &mut rng, 1.0);
        // the first pair swapped; the dependent add stayed put
        assert_eq!(
            q.insts()[0],
            Inst::MovImm {
                dst: Reg::R2,
                imm: 2
            }
        );
        assert_eq!(
            q.insts()[1],
            Inst::MovImm {
                dst: Reg::R1,
                imm: 1
            }
        );
        assert!(matches!(q.insts()[2], Inst::Alu { .. }));
        // semantics unchanged
        assert_eq!(result_of(&p), result_of(&q));
    }

    #[test]
    fn reordering_preserves_checksum_semantics() {
        let p = checksum_program();
        let expected = result_of(&p);
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let q = reorder_pass(&p, &mut rng, 0.8);
            assert_eq!(result_of(&q), expected, "seed {seed}");
        }
    }

    #[test]
    fn used_regs_detects_all_reference_kinds() {
        let mut b = ProgramBuilder::new("t");
        b.load(Reg::R1, MemRef::base_index(Reg::R2, Reg::R3, 8));
        b.cmp(Reg::R4, Reg::R5);
        b.halt();
        let used = used_regs(&b.build());
        for r in [1, 2, 3, 4, 5] {
            assert!(used[r], "r{r}");
        }
        assert!(!used[6]);
    }
}
