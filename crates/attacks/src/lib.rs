//! # sca-attacks — attack PoCs, benign workloads, mutation, obfuscation
//!
//! The paper's evaluation (Tables II and III) runs on:
//!
//! * 9 collected attack PoCs across four attack *types* — Flush+Reload
//!   family (FR-IAIK, FR-Mastik, FR-Nepoche, FF-IAIK, ER-IAIK),
//!   Prime+Probe family (PP-IAIK, PP-Jzhang), and their Spectre-like
//!   variants (Spectre-FR ×2, Spectre-PP-Trippel);
//! * 400 *mutated* variants per type, produced with a semantics-preserving
//!   code mutator (the paper uses `mutate_cpp`);
//! * 400 benign programs (SPEC2006-like kernels, LeetCode-style solutions,
//!   crypto kernels, and server-application loops);
//! * 800 *obfuscated* variants (polymorphic junk-code insertion, ~70% BB
//!   inflation) for the robustness task E4.
//!
//! This crate regenerates all of that as deterministic, seeded
//! [`sca_isa::Program`]s paired with the [`sca_cpu::Victim`] model each
//! program expects, so the whole dataset is reproducible bit-for-bit.
//!
//! ```
//! use sca_attacks::poc;
//!
//! let sample = poc::flush_reload_iaik(&poc::PocParams::default());
//! assert!(sample.program.has_attack_tags());
//! ```

pub mod benign;
pub mod dataset;
pub mod layout;
pub mod mutate;
pub mod obfuscate;
pub mod poc;
mod rewrite;
mod sample;
pub mod victim_programs;

pub use dataset::{Dataset, DatasetConfig};
pub use sample::{AttackFamily, Label, Sample};
