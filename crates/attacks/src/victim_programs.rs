//! Victim *programs*: real micro-ISA services to co-schedule with an
//! attacker via [`sca_cpu::Machine::run_pair`], instead of the abstract
//! [`sca_cpu::Victim`] models.
//!
//! These close the loop on realism: the secret-dependent cache footprint
//! emerges from ordinary victim code (table lookups), not from a scripted
//! model.

use sca_isa::{AluOp, MemRef, Program, ProgramBuilder, Reg};

use crate::layout::{LINE, SHARED_BASE};

/// Private state of the victim services (disjoint from every other region).
const VICTIM_STATE: u64 = 0x7100_0000;

/// An AES-like encryption service: on each scheduling quantum it performs
/// one first-round T-table lookup `T[p ^ key]` over the shared table and
/// yields. The accessed table *line* is `(p ^ key) >> 4`, the classic
/// known-plaintext leak.
///
/// The plaintext byte is read from the service's input word at
/// `0x7100_0000` (memory defaults to zero, so the default plaintext is 0
/// and the hot line directly encodes the key's high nibble).
pub fn aes_service(key: u8) -> Program {
    let mut b = ProgramBuilder::new(format!("victim-aes-{key:02x}"));
    let (p, t, x) = (Reg::R1, Reg::R2, Reg::R3);
    let top = b.here();
    // p = plaintext byte
    b.load(p, MemRef::abs(VICTIM_STATE as i64));
    b.alu_imm(AluOp::And, p, 0xff);
    // t = T-table line address of entry (p ^ key)
    b.mov_reg(t, p);
    b.alu_imm(AluOp::Xor, t, i64::from(key));
    b.alu_imm(AluOp::Shr, t, 4);
    b.alu_imm(AluOp::Shl, t, 6);
    b.alu_imm(AluOp::Add, t, SHARED_BASE as i64);
    // the leaking lookup
    b.load(x, MemRef::base(t));
    // mix into a running MAC (count ^ data) so the work is not dead
    b.load(p, MemRef::abs((VICTIM_STATE + 8) as i64));
    b.alu_imm(AluOp::Add, p, 1);
    b.alu(AluOp::Xor, p, x);
    b.store(p, MemRef::abs((VICTIM_STATE + 8) as i64));
    // hand the core back until the next quantum
    b.vyield();
    b.jmp(top);
    b.build()
}

/// A square-and-multiply exponentiation service: each quantum processes
/// one exponent bit, touching one of two shared code-path lines (`square`
/// vs `multiply`) — the classic RSA key-bit leak over shared memory.
pub fn rsa_service(exponent: u64, bits: u32) -> Program {
    let mut b = ProgramBuilder::new(format!("victim-rsa-{exponent:x}"));
    let (i, bit, acc, addr) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(acc, 1);
    b.mov_imm(i, 0);
    let top = b.here();
    // bit = (exponent >> i) & 1
    b.mov_imm(bit, exponent as i64);
    b.alu(AluOp::Shr, bit, i);
    b.alu_imm(AluOp::And, bit, 1);
    // square step: touch shared line 0 (the "square" routine's code/table)
    b.mov_imm(addr, SHARED_BASE as i64);
    b.load(Reg::R5, MemRef::base(addr));
    b.alu(AluOp::Mul, acc, acc);
    b.alu_imm(AluOp::And, acc, 0xffff_ffff);
    // multiply step only on set bits: touch shared line 1
    b.cmp_imm(bit, 0);
    let skip = b.new_label();
    b.br(sca_isa::Cond::Eq, skip);
    b.mov_imm(addr, (SHARED_BASE + LINE) as i64);
    b.load(Reg::R5, MemRef::base(addr));
    b.alu_imm(AluOp::Mul, acc, 3);
    b.alu_imm(AluOp::And, acc, 0xffff_ffff);
    b.bind(skip);
    // advance to the next bit (wrapping), one bit per quantum
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, i64::from(bits));
    let cont = b.new_label();
    b.br(sca_isa::Cond::Lt, cont);
    b.mov_imm(i, 0);
    b.bind(cont);
    b.vyield();
    b.jmp(top);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RESULT_BASE;
    use crate::poc::{self, PocParams};
    use sca_cpu::{CpuConfig, Machine};

    #[test]
    fn flush_reload_recovers_the_aes_nibble_from_a_real_victim_program() {
        let key = 0xC5u8; // high nibble 0xC
        let attacker = poc::flush_reload_iaik(&PocParams::default());
        let victim = aes_service(key);
        let mut m = Machine::new(CpuConfig::default());
        let t = m
            .run_pair(&attacker.program, &victim, 64)
            .expect("run_pair");
        assert!(t.halted);
        let hits: Vec<u64> = (0..16)
            .filter(|i| m.read_word(RESULT_BASE + i * 8) != 0)
            .collect();
        assert!(
            hits.contains(&u64::from(key >> 4)),
            "key nibble line must be hot: {hits:?}"
        );
    }

    #[test]
    fn rsa_service_touches_square_and_multiply_lines() {
        let attacker = poc::flush_reload_iaik(&PocParams::default().with_rounds(8));
        let victim = rsa_service(0b1011, 4);
        let mut m = Machine::new(CpuConfig::default());
        let t = m
            .run_pair(&attacker.program, &victim, 64)
            .expect("run_pair");
        assert!(t.halted);
        // lines 0 (square) and 1 (multiply) must both show up across bits
        let hits: Vec<u64> = (0..16)
            .filter(|i| m.read_word(RESULT_BASE + i * 8) != 0)
            .collect();
        assert!(hits.contains(&0), "square line hot: {hits:?}");
        assert!(hits.contains(&1), "multiply line hot: {hits:?}");
    }

    #[test]
    fn victim_program_state_persists_across_yields() {
        // the RSA service walks its exponent bits across quanta; after
        // many yields the MAC word of the AES service also accumulates
        let attacker = poc::flush_reload_iaik(&PocParams::default());
        let victim = aes_service(0x11);
        let mut m = Machine::new(CpuConfig::default());
        m.run_pair(&attacker.program, &victim, 64).expect("run");
        assert_ne!(
            m.read_word(VICTIM_STATE + 8),
            0,
            "the service's running MAC must have accumulated"
        );
    }
}
