//! Dataset assembly (Tables II and III): mutated attack variants per
//! family, the benign mix, and obfuscated variants for E4.

use sca_isa::rng::SmallRng;

use crate::benign;
use crate::mutate::{mutate, MutationConfig};
use crate::obfuscate::{obfuscate, ObfuscationConfig};
use crate::poc::{self, PocParams};
use crate::sample::{AttackFamily, Sample};

/// Configuration of dataset generation.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Mutated variants per attack type (400 in the paper).
    pub per_type: usize,
    /// Total benign programs (400 in the paper).
    pub benign_total: usize,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Mutation intensity.
    pub mutation: MutationConfig,
    /// Obfuscation intensity (E4).
    pub obfuscation: ObfuscationConfig,
}

impl DatasetConfig {
    /// The paper's full scale: 400 variants per type + 400 benign.
    pub fn paper_scale() -> DatasetConfig {
        DatasetConfig {
            per_type: 400,
            benign_total: 400,
            seed: 0x5ca6_0a2d,
            mutation: MutationConfig::default(),
            obfuscation: ObfuscationConfig::default(),
        }
    }

    /// A reduced scale for fast tests and smoke runs.
    pub fn small(per_type: usize) -> DatasetConfig {
        DatasetConfig {
            per_type,
            benign_total: per_type,
            ..DatasetConfig::paper_scale()
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> DatasetConfig {
        DatasetConfig::paper_scale()
    }
}

/// Draw a parameter variation for one mutant: the paper's mutation operates
/// on PoC source code, which perturbs loop bounds and constants as well as
/// instructions; we mirror that by varying the generator parameters.
fn vary_params(rng: &mut SmallRng) -> PocParams {
    let probe_lines = rng.gen_range(8..24u64);
    let prime_sets = rng.gen_range(6..12u64);
    let max_secret = probe_lines.min(prime_sets);
    let n_secrets = rng.gen_range(1..4usize);
    let secrets: Vec<u64> = (0..n_secrets)
        .map(|_| rng.gen_range(0..max_secret))
        .collect();
    PocParams {
        probe_lines,
        rounds: rng.gen_range(2..5),
        prime_sets,
        spectre_secret: rng.gen_range(0..max_secret),
        secrets,
        ..PocParams::default()
    }
}

/// Generate `count` mutated variants of `family`, cycling over the
/// family's collected PoC implementations.
pub fn mutated_family(
    family: AttackFamily,
    count: usize,
    seed: u64,
    mutation: &MutationConfig,
) -> Vec<Sample> {
    let mut rng = SmallRng::seed_from_u64(seed ^ family as u64);
    let mut out = Vec::with_capacity(count);
    let bases: Vec<fn(&PocParams) -> Sample> = match family {
        AttackFamily::FlushReload => vec![
            poc::flush_reload_iaik,
            poc::flush_reload_mastik,
            poc::flush_reload_nepoche,
            poc::flush_reload_calibrated,
            poc::flush_flush_iaik,
            poc::evict_reload_iaik,
        ],
        AttackFamily::PrimeProbe => vec![
            poc::prime_probe_iaik,
            poc::prime_probe_jzhang,
            poc::prime_probe_percival,
        ],
        AttackFamily::SpectreFlushReload => {
            vec![poc::spectre_fr_v1, poc::spectre_fr_v2, poc::spectre_fr_v3]
        }
        AttackFamily::SpectrePrimeProbe => vec![poc::spectre_pp_trippel],
    };
    for i in 0..count {
        let params = vary_params(&mut rng);
        let base = bases[i % bases.len()](&params);
        let program = mutate(&base.program, rng.gen(), mutation);
        out.push(Sample::new(program, base.victim, base.label));
    }
    out
}

/// Generate `count` obfuscated variants of `family` (E4), cycling over the
/// family's PoCs, applying parameter variation *and* obfuscation.
pub fn obfuscated_family(
    family: AttackFamily,
    count: usize,
    seed: u64,
    obf: &ObfuscationConfig,
) -> Vec<Sample> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0bf5 ^ family as u64);
    let mut out = Vec::with_capacity(count);
    let mutation = MutationConfig {
        rename_regs: false,
        junk_prob: 0.0,
        split_prob: 0.0,
        subst_prob: 0.0,
        ..MutationConfig::default()
    };
    for s in mutated_family(family, count, rng.gen(), &mutation) {
        let program = obfuscate(&s.program, rng.gen(), obf);
        out.push(Sample::new(program, s.victim, s.label));
    }
    out
}

/// The full evaluation dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Mutated attack variants, `per_type` per family, in family order.
    pub attacks: Vec<Sample>,
    /// Benign programs with the Table-III mix.
    pub benign: Vec<Sample>,
}

impl Dataset {
    /// Build the dataset described by `cfg`.
    pub fn build(cfg: &DatasetConfig) -> Dataset {
        let mut attacks = Vec::with_capacity(cfg.per_type * 4);
        for family in AttackFamily::ALL {
            attacks.extend(mutated_family(
                family,
                cfg.per_type,
                cfg.seed,
                &cfg.mutation,
            ));
        }
        let benign = benign::generate_mix(cfg.benign_total, cfg.seed ^ 0xbe);
        Dataset { attacks, benign }
    }

    /// Attack samples of one family.
    pub fn family(&self, family: AttackFamily) -> impl Iterator<Item = &Sample> {
        self.attacks
            .iter()
            .filter(move |s| s.label.family() == Some(family))
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.attacks.len() + self.benign.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty() && self.benign.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_has_expected_shape() {
        let ds = Dataset::build(&DatasetConfig::small(6));
        assert_eq!(ds.attacks.len(), 24);
        assert_eq!(ds.benign.len(), 6);
        assert_eq!(ds.len(), 30);
        for f in AttackFamily::ALL {
            assert_eq!(ds.family(f).count(), 6);
        }
    }

    #[test]
    fn mutants_are_distinct_programs() {
        let samples = mutated_family(AttackFamily::FlushReload, 8, 7, &MutationConfig::default());
        for i in 0..samples.len() {
            for j in (i + 1)..samples.len() {
                assert_ne!(
                    samples[i].program.insts(),
                    samples[j].program.insts(),
                    "mutants {i} and {j} identical"
                );
            }
        }
    }

    #[test]
    fn obfuscated_variants_keep_their_label() {
        let samples = obfuscated_family(
            AttackFamily::PrimeProbe,
            4,
            9,
            &ObfuscationConfig::default(),
        );
        assert_eq!(samples.len(), 4);
        for s in &samples {
            assert_eq!(s.label.family(), Some(AttackFamily::PrimeProbe));
            assert!(s.name().contains("obf"));
        }
    }

    #[test]
    fn dataset_generation_is_deterministic() {
        let a = Dataset::build(&DatasetConfig::small(3));
        let b = Dataset::build(&DatasetConfig::small(3));
        for (x, y) in a.attacks.iter().zip(&b.attacks) {
            assert_eq!(x.program.insts(), y.program.insts());
        }
    }
}
