//! Flush+Flush (FF-IAIK): observe the victim through `clflush` latency
//! alone — flushing a cached line takes measurably longer than flushing an
//! uncached one, so the attack never performs a reload.

use sca_cpu::Victim;
use sca_isa::{AluOp, Cond, InstTag, MemRef, ProgramBuilder, Reg};

use crate::layout::{LINE, RESULT_BASE, SHARED_BASE};
use crate::poc::PocParams;
use crate::sample::{AttackFamily, Label, Sample};

/// IAIK-style Flush+Flush over the shared probe region.
pub fn flush_flush_iaik(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("FF-IAIK");
    crate::poc::emit_load_calibration(&mut b);
    let (i, addr, t0, t1, round) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R7);
    let mark = Reg::R9;

    b.mov_imm(mark, 1);
    b.mov_imm(round, 0);
    let round_top = b.here();

    // Let the victim touch its secret line first; a cached line will now
    // flush slowly.
    b.vyield();

    b.mov_imm(i, 0);
    let line_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Flush);
    b.clflush(MemRef::base(addr));
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, t1, t0);
    // Slow flush => the line was cached => the victim accessed it.
    b.tag_next(InstTag::Recover);
    b.cmp_imm(t1, params.flush_threshold);
    let fast = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Lt, fast);
    // The round number is the recorded mark: the warm-up round stores 0
    // (no flag), discarding its cold-cache noise for free.
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(addr, i);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, RESULT_BASE as i64);
        b.store(round, MemRef::base(addr));
    });
    b.bind(fast);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, line_top);

    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();

    Sample::new(
        b.build(),
        Victim::shared_memory(SHARED_BASE, LINE, params.secrets.clone()),
        Label::Attack(AttackFamily::FlushReload),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cpu::{CpuConfig, Machine};

    #[test]
    fn ff_recovers_the_secret_line() {
        let params = PocParams::default().with_secrets(vec![6, 6, 6, 6]);
        let s = flush_flush_iaik(&params);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &s.victim).expect("run");
        assert!(t.halted);
        let hits: Vec<u64> = (0..params.probe_lines)
            .filter(|i| m.read_word(RESULT_BASE + i * 8) != 0)
            .collect();
        assert!(hits.contains(&6), "secret line must flush slowly: {hits:?}");
    }

    #[test]
    fn ff_never_reloads_the_probe_region() {
        // The defining property of Flush+Flush: no loads from the shared
        // region, only clflush.
        let s = flush_flush_iaik(&PocParams::default());
        for inst in s.program.insts() {
            if let sca_isa::Inst::Load { addr, .. } = inst {
                assert_ne!(addr.base, None, "no absolute loads from the shared region");
            }
        }
        let flushes = s
            .program
            .insts()
            .iter()
            .filter(|i| matches!(i, sca_isa::Inst::Clflush { .. }))
            .count();
        assert_eq!(flushes, 1, "one clflush site, in the attack loop");
    }
}
