//! Three Prime+Probe implementations (PP-IAIK, PP-Jzhang, PP-Percival in
//! Table II).
//!
//! Prime+Probe needs no shared memory: the attacker fills ("primes") the
//! monitored cache sets with its own lines, lets the victim run, then
//! re-traverses ("probes") each set with timing — a victim access to a
//! monitored set evicts one of the attacker's lines and slows the probe.
//!
//! Two traversal details matter on an out-of-order core and have
//! real-world counterparts in every robust PoC:
//!
//! * **Way-index masking.** At a counted loop's exit branch the core
//!   mispredicts and speculatively runs extra iterations; unmasked, those
//!   wrong-path loads hit out-of-range ways *in the monitored set*,
//!   evicting primed lines and burying the victim's one-line signal under
//!   self-inflicted misses. Wrapping the way index (`and w, ways-1`)
//!   sends the overshoot back to an already-resident way — a harmless
//!   cache hit — so the traversal never pollutes its own sets, no matter
//!   what padding surrounds the loop. (Real PoCs get the same hygiene
//!   from pointer-chased eviction sets.)
//! * **Zig-zag order.** The probe walks the ways in the *reverse* of
//!   prime order, so the line the victim evicted (the LRU, first-primed
//!   one) is probed last and its reload displaces the victim's line
//!   rather than a yet-unprobed one — one clean miss instead of a
//!   cascade (Osvik/Tromer's classic discipline).
//!
//! The probe thresholds in [`PocParams`] are calibrated to the simulated
//! latency model the same way a real PoC calibrates to its host CPU.

use sca_cpu::Victim;
use sca_isa::{AluOp, Cond, InstTag, MemRef, ProgramBuilder, Reg};

use crate::layout::{
    prime_addr, LINE, LLC_SETS, MONITOR_SET_BASE, RESULT_BASE, VICTIM_CONFLICT_BASE,
};
use crate::poc::PocParams;
use crate::sample::{AttackFamily, Label, Sample};

fn victim_for(params: &PocParams) -> Victim {
    // the victim's conflict addresses target the monitored set range
    Victim::set_conflict(
        VICTIM_CONFLICT_BASE + MONITOR_SET_BASE * LINE,
        LINE,
        params.secrets.clone(),
    )
}

/// Register assignment shared by the direct-addressing generators
/// (PP-IAIK and PP-Percival).
struct PpRegs {
    s: Reg,
    w: Reg,
    addr: Reg,
    t0: Reg,
    t1: Reg,
    v: Reg,
}

/// Emit the shared `addr = base + (w & (ways-1)) * stride + s * 64`
/// address computation of one prime/probe body.
fn emit_way_addr(b: &mut ProgramBuilder, r: &PpRegs, ways: i64, stride: i64) {
    b.mov_reg(r.addr, r.w);
    // way-index mask: keeps wrong-path overshoot inside the primed range
    b.alu_imm(AluOp::And, r.addr, ways - 1);
    b.alu_imm(AluOp::Mul, r.addr, stride);
    b.mov_reg(r.v, r.s);
    b.alu_imm(AluOp::Shl, r.v, 6);
    b.alu(AluOp::Add, r.addr, r.v);
    b.alu_imm(AluOp::Add, r.addr, prime_addr(MONITOR_SET_BASE, 0) as i64);
}

/// Emit a prime pass: fill `ways` ways of `sets` monitored sets, way
/// stride `stride` bytes, ways ascending.
fn emit_prime(b: &mut ProgramBuilder, r: &PpRegs, sets: i64, ways: i64, stride: i64) {
    b.mov_imm(r.s, 0);
    let set_top = b.here();
    b.mov_imm(r.w, 0);
    let way_top = b.here();
    b.tagged(InstTag::Prime, |b| {
        emit_way_addr(b, r, ways, stride);
        b.load(r.v, MemRef::base(r.addr));
    });
    b.alu_imm(AluOp::Add, r.w, 1);
    b.cmp_imm(r.w, ways);
    b.br(Cond::Lt, way_top);
    b.alu_imm(AluOp::Add, r.s, 1);
    b.cmp_imm(r.s, sets);
    b.br(Cond::Lt, set_top);
}

/// Emit one timed probe of the set in `r.s`: walk `ways` ways in reverse
/// (zig-zag) order and leave the elapsed time in `r.t1`.
fn emit_probe_timed(b: &mut ProgramBuilder, r: &PpRegs, ways: i64, stride: i64) {
    b.tag_next(InstTag::Time);
    b.rdtscp(r.t0);
    b.mov_imm(r.w, ways - 1);
    let way_top = b.here();
    b.tagged(InstTag::Probe, |b| {
        emit_way_addr(b, r, ways, stride);
        b.load(r.v, MemRef::base(r.addr));
    });
    b.cmp_imm(r.w, 0);
    let done = b.new_label();
    b.br(Cond::Eq, done);
    b.alu_imm(AluOp::Sub, r.w, 1);
    b.jmp(way_top);
    b.bind(done);
    b.tag_next(InstTag::Time);
    b.rdtscp(r.t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, r.t1, r.t0);
}

/// Shared round-loop skeleton for the direct-addressing generators:
/// per round prime → yield → probe each set → record sets slower than
/// `threshold`.
fn emit_pp_rounds(
    b: &mut ProgramBuilder,
    r: &PpRegs,
    round: Reg,
    params: &PocParams,
    ways: i64,
    stride: i64,
    threshold: i64,
) {
    assert!(
        ways.count_ones() == 1,
        "way-index masking requires a power-of-two way count, got {ways}"
    );
    let sets = params.prime_sets as i64;
    b.mov_imm(round, 0);
    let round_top = b.here();

    emit_prime(b, r, sets, ways, stride);
    b.vyield();

    b.mov_imm(r.s, 0);
    let probe_set_top = b.here();
    emit_probe_timed(b, r, ways, stride);
    // Slow probe => the victim touched this set. The *round number* is
    // the recorded mark: the warm-up round stores 0 (no flag), which
    // discards its cold-instruction-cache noise for free.
    b.tag_next(InstTag::Recover);
    b.cmp_imm(r.t1, threshold);
    let fast = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Lt, fast);
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(r.addr, r.s);
        b.alu_imm(AluOp::Shl, r.addr, 3);
        b.alu_imm(AluOp::Add, r.addr, RESULT_BASE as i64);
        b.store(round, MemRef::base(r.addr));
    });
    b.bind(fast);
    b.alu_imm(AluOp::Add, r.s, 1);
    b.cmp_imm(r.s, sets);
    b.br(Cond::Lt, probe_set_top);

    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
}

/// IAIK-style Prime+Probe on the LLC: prime all monitored sets, yield,
/// probe all sets with one `rdtscp` pair per set, record slow sets.
pub fn prime_probe_iaik(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("PP-IAIK");
    crate::poc::emit_load_calibration(&mut b);
    let r = PpRegs {
        s: Reg::R2,
        w: Reg::R3,
        addr: Reg::R4,
        t0: Reg::R5,
        t1: Reg::R6,
        v: Reg::R8,
    };
    let round = Reg::R7;
    let stride = (LLC_SETS * LINE) as i64;
    let ways = params.prime_ways as i64;

    emit_pp_rounds(
        &mut b,
        &r,
        round,
        params,
        ways,
        stride,
        params.probe_threshold,
    );
    crate::poc::emit_report(&mut b, params.prime_sets);
    b.halt();

    Sample::new(
        b.build(),
        victim_for(params),
        Label::Attack(AttackFamily::PrimeProbe),
    )
}

/// Percival-style Prime+Probe on the *L1 data cache*: primes all 8 ways of
/// the monitored L1 sets and probes them with timing. No shared memory, no
/// `clflush`, and — unlike the LLC variants — the prime lines deliberately
/// conflict only in the L1 (each way maps to a distinct LLC set).
pub fn prime_probe_percival(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("PP-Percival");
    crate::poc::emit_load_calibration(&mut b);
    let r = PpRegs {
        s: Reg::R2,
        w: Reg::R3,
        addr: Reg::R4,
        t0: Reg::R5,
        t1: Reg::R6,
        v: Reg::R8,
    };
    let round = Reg::R7;
    // L1D: 64 sets x 8 ways x 64B. Way stride 64*64 B keeps each way in a
    // different LLC set, so only the L1 conflicts matter; one victim
    // access costs one L1 miss (an LLC hit, ~26 cycles) over the
    // all-L1-hit baseline.
    let l1_ways: i64 = 8;
    let way_stride: i64 = 64 * 64;

    emit_pp_rounds(
        &mut b,
        &r,
        round,
        params,
        l1_ways,
        way_stride,
        params.l1_probe_threshold,
    );
    crate::poc::emit_report(&mut b, params.prime_sets);
    b.halt();

    Sample::new(
        b.build(),
        victim_for(params),
        Label::Attack(AttackFamily::PrimeProbe),
    )
}

/// Jzhang-style Prime+Probe: primes ways in *descending* order, probes
/// forward with per-way latency accumulation (rdtscp inside the way
/// loop), and uses index-register addressing — structurally distinct
/// from [`prime_probe_iaik`] while keeping the same zig-zag discipline
/// (probe order is the reverse of prime order).
pub fn prime_probe_jzhang(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("PP-Jzhang");
    crate::poc::emit_load_calibration(&mut b);
    let (s, w, off, t0, t1) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    let (round, v, acc, base) = (Reg::R7, Reg::R8, Reg::R10, Reg::R1);
    let sets = params.prime_sets as i64;
    let ways = params.prime_ways as i64;
    assert!(
        ways.count_ones() == 1,
        "way-index masking requires a power-of-two way count, got {ways}"
    );

    b.mov_imm(base, prime_addr(MONITOR_SET_BASE, 0) as i64);
    b.mov_imm(round, 0);
    let round_top = b.here();

    // Prime step, ways descending.
    b.mov_imm(s, 0);
    let prime_set_top = b.here();
    b.mov_imm(w, ways - 1);
    let prime_way_top = b.here();
    b.tagged(InstTag::Prime, |b| {
        b.mov_reg(off, w);
        b.alu_imm(AluOp::And, off, ways - 1);
        b.alu_imm(AluOp::Mul, off, (LLC_SETS * LINE) as i64);
        b.mov_reg(v, s);
        b.alu_imm(AluOp::Shl, v, 6);
        b.alu(AluOp::Add, off, v);
        b.load(v, MemRef::base_index(base, off, 1));
    });
    b.cmp_imm(w, 0);
    let prime_done = b.new_label();
    b.br(Cond::Eq, prime_done);
    b.alu_imm(AluOp::Sub, w, 1);
    b.jmp(prime_way_top);
    b.bind(prime_done);
    b.alu_imm(AluOp::Add, s, 1);
    b.cmp_imm(s, sets);
    b.br(Cond::Lt, prime_set_top);

    b.vyield();

    // Probe step with per-way accumulated latency, ways ascending (the
    // reverse of prime order — the zig-zag).
    b.mov_imm(s, 0);
    let probe_set_top = b.here();
    b.mov_imm(acc, 0);
    b.mov_imm(w, 0);
    let probe_way_top = b.here();
    b.tagged(InstTag::Probe, |b| {
        b.mov_reg(off, w);
        b.alu_imm(AluOp::And, off, ways - 1);
        b.alu_imm(AluOp::Mul, off, (LLC_SETS * LINE) as i64);
        b.mov_reg(v, s);
        b.alu_imm(AluOp::Shl, v, 6);
        b.alu(AluOp::Add, off, v);
    });
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Probe);
    b.load(v, MemRef::base_index(base, off, 1));
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tagged(InstTag::Time, |b| {
        b.alu(AluOp::Sub, t1, t0);
        b.alu(AluOp::Add, acc, t1);
    });
    b.alu_imm(AluOp::Add, w, 1);
    b.cmp_imm(w, ways);
    b.br(Cond::Lt, probe_way_top);
    // Slow accumulated probe => the victim touched this set; the round
    // number is the mark (the warm-up round stores 0, discarding its
    // cold-instruction-cache noise for free).
    b.tag_next(InstTag::Recover);
    b.cmp_imm(acc, params.probe_acc_threshold);
    let fast = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Lt, fast);
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(off, s);
        b.alu_imm(AluOp::Shl, off, 3);
        b.alu_imm(AluOp::Add, off, RESULT_BASE as i64);
        b.store(round, MemRef::base(off));
    });
    b.bind(fast);
    b.alu_imm(AluOp::Add, s, 1);
    b.cmp_imm(s, sets);
    b.br(Cond::Lt, probe_set_top);

    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.prime_sets);
    b.halt();

    Sample::new(
        b.build(),
        victim_for(params),
        Label::Attack(AttackFamily::PrimeProbe),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cpu::{CpuConfig, Machine};

    fn slow_sets(sample: &Sample, prime_sets: u64) -> Vec<u64> {
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&sample.program, &sample.victim).expect("run");
        assert!(t.halted, "PoC must halt");
        (0..prime_sets)
            .filter(|s| m.read_word(RESULT_BASE + s * 8) != 0)
            .collect()
    }

    #[test]
    fn pp_iaik_detects_the_victim_set() {
        let params = PocParams::default().with_secrets(vec![3, 3, 3, 3]);
        let s = prime_probe_iaik(&params);
        let slow = slow_sets(&s, params.prime_sets);
        assert_eq!(
            slow,
            vec![3],
            "exactly the victim's set must probe slowly (a differential \
             signal, not an all-slow scan)"
        );
    }

    #[test]
    fn pp_jzhang_detects_the_victim_set() {
        let params = PocParams::default().with_secrets(vec![5, 5, 5, 5]);
        let s = prime_probe_jzhang(&params);
        let slow = slow_sets(&s, params.prime_sets);
        assert_eq!(
            slow,
            vec![5],
            "exactly the victim's set must probe slowly (a differential \
             signal, not an all-slow scan)"
        );
    }

    #[test]
    fn pp_percival_detects_the_victim_set() {
        let params = PocParams::default().with_secrets(vec![2, 2, 2, 2]);
        let s = prime_probe_percival(&params);
        let slow = slow_sets(&s, params.prime_sets);
        assert_eq!(
            slow,
            vec![2],
            "exactly the victim's set must probe slowly (a differential \
             signal, not an all-slow scan)"
        );
    }

    #[test]
    fn pp_uses_no_clflush_and_no_shared_memory() {
        let s = prime_probe_iaik(&PocParams::default());
        for inst in s.program.insts() {
            assert!(
                !matches!(inst, sca_isa::Inst::Clflush { .. }),
                "Prime+Probe must not flush"
            );
        }
    }

    #[test]
    fn implementations_are_syntactically_distinct() {
        let p = PocParams::default();
        assert_ne!(
            prime_probe_iaik(&p).program.insts(),
            prime_probe_jzhang(&p).program.insts()
        );
        assert_ne!(
            prime_probe_iaik(&p).program.insts(),
            prime_probe_percival(&p).program.insts()
        );
    }
}
