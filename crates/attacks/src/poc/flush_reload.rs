//! Three independently-structured Flush+Reload implementations
//! (FR-IAIK, FR-Mastik, FR-Nepoche in Table II).

use sca_cpu::Victim;
use sca_isa::{AluOp, Cond, InstTag, MemRef, ProgramBuilder, Reg};

use crate::layout::{LINE, RESULT_BASE, SHARED_BASE};
use crate::poc::PocParams;
use crate::sample::{AttackFamily, Label, Sample};

fn victim_for(params: &PocParams) -> Victim {
    Victim::shared_memory(SHARED_BASE, LINE, params.secrets.clone())
}

/// The classic IAIK-style Flush+Reload: flush every monitored line, wait
/// for the victim, then reload each line with an `rdtscp` pair and record
/// lines whose reload beat the threshold (Fig. 1 of the paper).
pub fn flush_reload_iaik(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("FR-IAIK");
    crate::poc::emit_load_calibration(&mut b);
    let (i, addr, t0, t1, round) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R7);
    let one = Reg::R9;

    b.mov_imm(round, 0);
    b.mov_imm(one, 1);
    let round_top = b.here();

    // Flush step: clflush every monitored shared line.
    b.mov_imm(i, 0);
    let flush_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Mul, addr, LINE as i64);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Flush);
    b.clflush(MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, flush_top);

    // Let the victim run.
    b.vyield();

    // Reload step: timed re-access of each line.
    b.mov_imm(i, 0);
    let reload_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Mul, addr, LINE as i64);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Reload);
    b.load(Reg::R6, MemRef::base(addr));
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, t1, t0);
    let slow = b.new_label();
    b.tag_next(InstTag::Recover);
    b.cmp_imm(t1, params.reload_threshold);
    b.tag_next(InstTag::Recover);
    b.br(Cond::Ge, slow);
    // Hit: the victim touched this line — record it.
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(addr, i);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, RESULT_BASE as i64);
        b.store(one, MemRef::base(addr));
    });
    b.bind(slow);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, reload_top);

    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();

    Sample::new(
        b.build(),
        victim_for(params),
        Label::Attack(AttackFamily::FlushReload),
    )
}

/// Mastik-style Flush+Reload: per-line flush→wait→reload loop (one line at
/// a time) with shift-based addressing and an index-register addressing
/// mode, structurally unlike [`flush_reload_iaik`].
pub fn flush_reload_mastik(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("FR-Mastik");
    crate::poc::emit_load_calibration(&mut b);
    let (base, i, off, t0, t1, d, round) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    );
    let res = Reg::R8;

    b.mov_imm(base, SHARED_BASE as i64);
    b.mov_imm(res, RESULT_BASE as i64);
    b.mov_imm(round, 0);
    let round_top = b.here();
    b.mov_imm(i, 0);
    let line_top = b.here();

    // offset = i << 6
    b.mov_reg(off, i);
    b.alu_imm(AluOp::Shl, off, 6);

    // flush this one line, give the victim a slot, reload it timed
    b.tag_next(InstTag::Flush);
    b.clflush(MemRef::base_index(base, off, 1));
    b.vyield();
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Reload);
    b.load(d, MemRef::base_index(base, off, 1));
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, t1, t0);
    b.tag_next(InstTag::Recover);
    b.cmp_imm(t1, params.reload_threshold);
    let slow = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Ge, slow);
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(off, i);
        b.alu_imm(AluOp::Shl, off, 3);
        b.mov_imm(d, 1);
        b.store(d, MemRef::base_index(res, off, 1));
    });
    b.bind(slow);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, line_top);
    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();

    Sample::new(
        b.build(),
        victim_for(params),
        Label::Attack(AttackFamily::FlushReload),
    )
}

/// Nepoche-style Flush+Reload: flush pass forward, reload pass in *reverse*
/// order with a down-counting index, a fence between phases, and hit counts
/// accumulated per line in the result region instead of boolean flags.
pub fn flush_reload_nepoche(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("FR-Nepoche");
    crate::poc::emit_load_calibration(&mut b);
    let (i, addr, t0, t1, v, round) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7);
    let (res, cnt) = (Reg::R8, Reg::R9);

    b.mov_imm(round, 0);
    let round_top = b.here();

    // Flush pass (forward).
    b.mov_imm(i, 0);
    let flush_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Flush);
    b.clflush(MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, flush_top);

    b.mfence();
    b.vyield();

    // Reload pass (reverse).
    b.mov_imm(i, params.probe_lines as i64 - 1);
    let reload_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Reload);
    b.load(v, MemRef::base(addr));
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, t1, t0);
    b.tag_next(InstTag::Recover);
    b.cmp_imm(t1, params.reload_threshold);
    let slow = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Ge, slow);
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(res, i);
        b.alu_imm(AluOp::Shl, res, 3);
        b.alu_imm(AluOp::Add, res, RESULT_BASE as i64);
        b.load(cnt, MemRef::base(res));
        b.alu_imm(AluOp::Add, cnt, 1);
        b.store(cnt, MemRef::base(res));
    });
    b.bind(slow);
    b.cmp_imm(i, 0);
    let done = b.new_label();
    b.br(Cond::Eq, done);
    b.alu_imm(AluOp::Sub, i, 1);
    b.jmp(reload_top);
    b.bind(done);

    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();

    Sample::new(
        b.build(),
        victim_for(params),
        Label::Attack(AttackFamily::FlushReload),
    )
}

/// A self-calibrating Flush+Reload: instead of a hard-coded latency
/// threshold it derives the hit/miss boundary from the calibration phase
/// (half the maximum observed cold-load latency), the way careful real
/// PoCs compute their threshold at runtime.
pub fn flush_reload_calibrated(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("FR-Calibrated");
    crate::poc::emit_load_calibration(&mut b);
    // The calibration phase leaves the max observed hit latency in R6;
    // scale it into the decision threshold.
    // R6 holds the max cold-load (miss) latency; half of it separates
    // hits (L1/LLC) from misses under any sane latency model.
    let threshold = Reg::R10;
    b.mov_reg(threshold, Reg::R6);
    b.alu_imm(AluOp::Shr, threshold, 1);

    let (i, addr, t0, t1, round) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R7);
    let one = Reg::R9;
    b.mov_imm(round, 0);
    b.mov_imm(one, 1);
    let round_top = b.here();

    // Flush step.
    b.mov_imm(i, 0);
    let flush_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Flush);
    b.clflush(MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, flush_top);

    b.vyield();

    // Reload step with the calibrated threshold.
    b.mov_imm(i, 0);
    let reload_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Reload);
    b.load(Reg::R6, MemRef::base(addr));
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, t1, t0);
    let slow = b.new_label();
    b.tag_next(InstTag::Recover);
    b.cmp(t1, threshold);
    b.tag_next(InstTag::Recover);
    b.br(Cond::Ge, slow);
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(addr, i);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, RESULT_BASE as i64);
        b.store(one, MemRef::base(addr));
    });
    b.bind(slow);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, reload_top);

    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();

    Sample::new(
        b.build(),
        victim_for(params),
        Label::Attack(AttackFamily::FlushReload),
    )
}

/// A *dormant* Flush+Reload: the attack body is guarded by a trigger word
/// loaded from memory, which defaults to zero — so simply executing the
/// program never exhibits the attack behavior. This reproduces the
/// limitation the paper's Section V discusses: dynamic-trace approaches
/// (SCAGuard included, like all the detectors it compares against) cannot
/// model behavior that the run never triggers.
pub fn flush_reload_dormant(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("FR-Dormant");
    let (trigger, i, addr) = (Reg::R1, Reg::R2, Reg::R3);
    // load the trigger word; memory defaults to zero, so the guard falls
    // through to the decoy workload
    b.load(trigger, MemRef::abs((RESULT_BASE + 0x2000) as i64));
    b.cmp_imm(trigger, 0);
    let armed = b.new_label();
    b.br(Cond::Ne, armed);

    // decoy: an innocuous checksum loop
    b.mov_imm(i, 0);
    b.mov_imm(Reg::R6, 0);
    let decoy_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, (RESULT_BASE + 0x3000) as i64);
    b.load(Reg::R5, MemRef::base(addr));
    b.alu(AluOp::Add, Reg::R6, Reg::R5);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, 32);
    b.br(Cond::Lt, decoy_top);
    b.halt();

    // armed path: a full flush+reload, present in the binary but never
    // executed without the trigger
    b.bind(armed);
    let (t0, t1, round, one) = (Reg::R4, Reg::R5, Reg::R7, Reg::R9);
    b.mov_imm(round, 0);
    b.mov_imm(one, 1);
    let round_top = b.here();
    b.mov_imm(i, 0);
    let flush_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Flush);
    b.clflush(MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, flush_top);
    b.vyield();
    b.mov_imm(i, 0);
    let reload_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Reload);
    b.load(Reg::R6, MemRef::base(addr));
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, t1, t0);
    b.tag_next(InstTag::Recover);
    b.cmp_imm(t1, params.reload_threshold);
    let slow = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Ge, slow);
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(addr, i);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, RESULT_BASE as i64);
        b.store(one, MemRef::base(addr));
    });
    b.bind(slow);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, reload_top);
    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    b.halt();

    Sample::new(
        b.build(),
        victim_for(params),
        Label::Attack(AttackFamily::FlushReload),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cpu::{CpuConfig, Machine};

    fn recovered_lines(sample: &Sample, probe_lines: u64) -> Vec<u64> {
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&sample.program, &sample.victim).expect("run");
        assert!(t.halted, "PoC must halt within the step budget");
        (0..probe_lines)
            .filter(|i| m.read_word(RESULT_BASE + i * 8) != 0)
            .collect()
    }

    #[test]
    fn fr_iaik_recovers_the_secret_line() {
        let params = PocParams::default().with_secrets(vec![5, 5, 5, 5]);
        let s = flush_reload_iaik(&params);
        let hits = recovered_lines(&s, params.probe_lines);
        assert!(hits.contains(&5), "secret line must be recovered: {hits:?}");
        assert!(hits.len() <= 3, "few false hits expected: {hits:?}");
    }

    #[test]
    fn fr_mastik_recovers_the_secret_line() {
        // Mastik yields once per line; keep the victim on a constant secret.
        let params = PocParams::default().with_secrets(vec![9]);
        let s = flush_reload_mastik(&params);
        let hits = recovered_lines(&s, params.probe_lines);
        assert!(hits.contains(&9), "secret line must be recovered: {hits:?}");
    }

    #[test]
    fn fr_nepoche_recovers_the_secret_line() {
        let params = PocParams::default().with_secrets(vec![2, 2, 2, 2]);
        let s = flush_reload_nepoche(&params);
        let hits = recovered_lines(&s, params.probe_lines);
        assert!(hits.contains(&2), "secret line must be recovered: {hits:?}");
    }

    #[test]
    fn fr_calibrated_recovers_the_secret_line() {
        let params = PocParams::default().with_secrets(vec![7, 7, 7, 7]);
        let s = flush_reload_calibrated(&params);
        let hits = recovered_lines(&s, params.probe_lines);
        assert!(hits.contains(&7), "secret line must be recovered: {hits:?}");
        assert!(hits.len() <= 3, "few false hits expected: {hits:?}");
    }

    #[test]
    fn implementations_are_syntactically_distinct() {
        let p = PocParams::default();
        let a = flush_reload_iaik(&p);
        let b = flush_reload_mastik(&p);
        let c = flush_reload_nepoche(&p);
        assert_ne!(a.program.insts(), b.program.insts());
        assert_ne!(b.program.insts(), c.program.insts());
        assert_ne!(a.program.insts(), c.program.insts());
    }

    #[test]
    fn all_attack_steps_are_tagged() {
        let s = flush_reload_iaik(&PocParams::default());
        let tags: std::collections::BTreeSet<_> = s.program.tags().map(|(_, t)| t).collect();
        assert!(tags.contains(&InstTag::Flush));
        assert!(tags.contains(&InstTag::Reload));
        assert!(tags.contains(&InstTag::Time));
        assert!(tags.contains(&InstTag::Recover));
    }
}
