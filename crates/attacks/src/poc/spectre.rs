//! Spectre-like variants (S-FR ×3, S-PP ×1 in Table II).
//!
//! Each PoC trains a bounds-check branch, then supplies an out-of-bounds
//! index; the mispredicted branch transiently executes the in-bounds path,
//! loading `probe[array1[x] * LINE]` with the out-of-bounds (secret) value
//! of `array1[x]` — the cache fill survives the squash. The secret is then
//! recovered with Flush+Reload (S-FR) or Prime+Probe (S-PP) over the probe
//! region. No co-located victim is needed: the "victim" is the transient
//! gadget itself.

use sca_cpu::Victim;
use sca_isa::{AluOp, Cond, InstTag, MemRef, ProgramBuilder, Reg};

use crate::layout::{prime_addr, ATTACKER_BASE, LINE, LLC_SETS, MONITOR_SET_BASE, RESULT_BASE};
use crate::poc::PocParams;
use crate::sample::{AttackFamily, Label, Sample};

/// Logical size of `array1` (in 64-bit words); the secret sits just past it.
const ARRAY1_SIZE: u64 = 4;

/// Index table driving the training loop (one word per iteration).
const IDX_TABLE: u64 = ATTACKER_BASE + 512 * LINE;
/// The bounds-checked array; `array1[ARRAY1_SIZE]` holds the secret.
const ARRAY1: u64 = ATTACKER_BASE + 520 * LINE;
/// Flush+Reload probe region for S-FR (line `i` in LLC set `i`).
const FR_PROBE: u64 = ATTACKER_BASE + 0x20_0000;
/// Prime+Probe oracle region for S-PP (line `i` in LLC set
/// `MONITOR_SET_BASE + i`, clear of the sets holding program text).
const PP_PROBE: u64 = 0x6000_0000 + MONITOR_SET_BASE * LINE;

/// Emit the one-time memory setup: the secret word past `array1` and the
/// malicious final entry of the index table.
fn emit_setup(b: &mut ProgramBuilder, params: &PocParams) {
    let (r, a) = (Reg::R0, Reg::R1);
    // array1[ARRAY1_SIZE] = secret
    b.mov_imm(r, params.spectre_secret as i64);
    b.mov_imm(a, (ARRAY1 + ARRAY1_SIZE * 8) as i64);
    b.store(r, MemRef::base(a));
    // idx_table[training] = ARRAY1_SIZE (out of bounds); earlier entries
    // stay zero (in bounds).
    b.mov_imm(r, ARRAY1_SIZE as i64);
    b.mov_imm(a, (IDX_TABLE + params.training * 8) as i64);
    b.store(r, MemRef::base(a));
}

/// Emit the train-then-attack gadget loop. `k` iterations `0..training`
/// use in-bounds indices; iteration `training` uses the out-of-bounds one,
/// mispredicting the trained bounds check.
fn emit_gadget(b: &mut ProgramBuilder, params: &PocParams, probe_base: u64) {
    let (k, x, y) = (Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(k, 0);
    let train_top = b.here();
    b.tagged(InstTag::Speculate, |b| {
        // x = idx_table[k]
        b.mov_reg(x, k);
        b.alu_imm(AluOp::Shl, x, 3);
        b.alu_imm(AluOp::Add, x, IDX_TABLE as i64);
        b.load(x, MemRef::base(x));
        // bounds check — the Spectre branch
        b.cmp_imm(x, ARRAY1_SIZE as i64);
    });
    let out_of_bounds = b.new_label();
    b.tag_next(InstTag::Speculate);
    b.br(Cond::Ge, out_of_bounds);
    b.tagged(InstTag::Speculate, |b| {
        // y = array1[x]; touch probe[y * LINE]
        b.mov_reg(y, x);
        b.alu_imm(AluOp::Shl, y, 3);
        b.alu_imm(AluOp::Add, y, ARRAY1 as i64);
        b.load(y, MemRef::base(y));
        b.alu_imm(AluOp::Shl, y, 6);
        b.alu_imm(AluOp::Add, y, probe_base as i64);
        b.load(y, MemRef::base(y));
    });
    b.bind(out_of_bounds);
    b.alu_imm(AluOp::Add, k, 1);
    b.cmp_imm(k, params.training as i64 + 1);
    b.br(Cond::Lt, train_top);
}

/// Emit a timed Flush+Reload recovery pass over `probe_base`, recording
/// fast lines to the result region.
fn emit_fr_recover(b: &mut ProgramBuilder, params: &PocParams, probe_base: u64, reverse: bool) {
    let (i, addr, t0, t1) = (Reg::R5, Reg::R6, Reg::R8, Reg::R9);
    let mark = Reg::R10;
    b.mov_imm(mark, 1);
    if reverse {
        b.mov_imm(i, params.probe_lines as i64 - 1);
    } else {
        b.mov_imm(i, 0);
    }
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, probe_base as i64);
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Reload);
    b.load(t1, MemRef::base(addr));
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, t1, t0);
    b.tag_next(InstTag::Recover);
    b.cmp_imm(t1, params.reload_threshold);
    let slow = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Ge, slow);
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(addr, i);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, RESULT_BASE as i64);
        b.store(mark, MemRef::base(addr));
    });
    b.bind(slow);
    if reverse {
        b.cmp_imm(i, 0);
        let done = b.new_label();
        b.br(Cond::Eq, done);
        b.alu_imm(AluOp::Sub, i, 1);
        b.jmp(top);
        b.bind(done);
    } else {
        b.alu_imm(AluOp::Add, i, 1);
        b.cmp_imm(i, params.probe_lines as i64);
        b.br(Cond::Lt, top);
    }
}

/// Emit a flush pass over the probe region.
fn emit_flush_probe(b: &mut ProgramBuilder, params: &PocParams, probe_base: u64) {
    let (i, addr) = (Reg::R5, Reg::R6);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, probe_base as i64);
    b.tag_next(InstTag::Flush);
    b.clflush(MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, top);
}

/// Spectre v1 over Flush+Reload, the canonical PoC layout: per round,
/// flush probe → train-and-leak → timed reload.
pub fn spectre_fr_v1(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("Spectre-FR-v1");
    crate::poc::emit_load_calibration(&mut b);
    emit_setup(&mut b, params);
    let round = Reg::R7;
    b.mov_imm(round, 0);
    let round_top = b.here();
    emit_flush_probe(&mut b, params, FR_PROBE);
    emit_gadget(&mut b, params, FR_PROBE);
    emit_fr_recover(&mut b, params, FR_PROBE, false);
    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();
    Sample::new(
        b.build(),
        Victim::None,
        Label::Attack(AttackFamily::SpectreFlushReload),
    )
}

/// Spectre v1 over Flush+Reload with an `lfence`-delimited gadget and a
/// reverse-order recovery pass (the "good" PoC variant).
pub fn spectre_fr_v2(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("Spectre-FR-v2");
    crate::poc::emit_load_calibration(&mut b);
    emit_setup(&mut b, params);
    let round = Reg::R7;
    b.mov_imm(round, 0);
    let round_top = b.here();
    emit_flush_probe(&mut b, params, FR_PROBE);
    b.mfence();
    emit_gadget(&mut b, params, FR_PROBE);
    b.lfence();
    emit_fr_recover(&mut b, params, FR_PROBE, true);
    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();
    Sample::new(
        b.build(),
        Victim::None,
        Label::Attack(AttackFamily::SpectreFlushReload),
    )
}

/// Spectre v1 over Flush+Reload with hit-count accumulation: like
/// [`spectre_fr_v1`] but the recovery pass increments a per-line counter
/// (load/add/store) instead of setting a flag, with a fence between the
/// transient leak and the recovery.
pub fn spectre_fr_v3(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("Spectre-FR-v3");
    crate::poc::emit_load_calibration(&mut b);
    emit_setup(&mut b, params);
    let round = Reg::R7;
    b.mov_imm(round, 0);
    let round_top = b.here();
    emit_flush_probe(&mut b, params, FR_PROBE);
    emit_gadget(&mut b, params, FR_PROBE);
    b.mfence();
    // Recovery with accumulating hit counters.
    let (i, addr, t0, t1, cnt) = (Reg::R5, Reg::R6, Reg::R8, Reg::R9, Reg::R10);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, FR_PROBE as i64);
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Reload);
    b.load(t1, MemRef::base(addr));
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, t1, t0);
    b.tag_next(InstTag::Recover);
    b.cmp_imm(t1, params.reload_threshold);
    let slow = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Ge, slow);
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(addr, i);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, RESULT_BASE as i64);
        b.load(cnt, MemRef::base(addr));
        b.alu_imm(AluOp::Add, cnt, 1);
        b.store(cnt, MemRef::base(addr));
    });
    b.bind(slow);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, top);

    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();
    Sample::new(
        b.build(),
        Victim::None,
        Label::Attack(AttackFamily::SpectreFlushReload),
    )
}

/// Trippel-style Spectre over Prime+Probe: prime the oracle sets, run the
/// transient gadget (whose leak lands in one primed set), probe with
/// timing. Works without `clflush` and without shared memory.
pub fn spectre_pp_trippel(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("Spectre-PP-Trippel");
    crate::poc::emit_load_calibration(&mut b);
    emit_setup(&mut b, params);
    let (s, w, addr, t0, t1) = (Reg::R5, Reg::R6, Reg::R8, Reg::R9, Reg::R10);
    let round = Reg::R7;
    let n_sets = params.probe_lines as i64; // one oracle set per probe value
    let ways = params.prime_ways as i64;
    let stride = (LLC_SETS * LINE) as i64;
    assert!(
        ways.count_ones() == 1,
        "way-index masking requires a power-of-two way count, got {ways}"
    );

    b.mov_imm(round, 0);
    let round_top = b.here();

    // Prime the oracle sets (way index masked — see the prime_probe
    // module docs for the wrong-path hygiene this buys).
    b.mov_imm(s, 0);
    let prime_set_top = b.here();
    b.mov_imm(w, 0);
    let prime_way_top = b.here();
    b.tagged(InstTag::Prime, |b| {
        b.mov_reg(addr, w);
        b.alu_imm(AluOp::And, addr, ways - 1);
        b.alu_imm(AluOp::Mul, addr, stride);
        b.mov_reg(t0, s);
        b.alu_imm(AluOp::Shl, t0, 6);
        b.alu(AluOp::Add, addr, t0);
        b.alu_imm(AluOp::Add, addr, prime_addr(MONITOR_SET_BASE, 0) as i64);
        b.load(t0, MemRef::base(addr));
    });
    b.alu_imm(AluOp::Add, w, 1);
    b.cmp_imm(w, ways);
    b.br(Cond::Lt, prime_way_top);
    b.alu_imm(AluOp::Add, s, 1);
    b.cmp_imm(s, n_sets);
    b.br(Cond::Lt, prime_set_top);

    // Transient leak into the oracle region (set = secret).
    emit_gadget(&mut b, params, PP_PROBE);

    // Probe the oracle sets, ways descending (the zig-zag: reverse of
    // prime order).
    b.mov_imm(s, 0);
    let probe_set_top = b.here();
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.mov_imm(w, ways - 1);
    let probe_way_top = b.here();
    b.tagged(InstTag::Probe, |b| {
        b.mov_reg(addr, w);
        b.alu_imm(AluOp::And, addr, ways - 1);
        b.alu_imm(AluOp::Mul, addr, stride);
        b.mov_reg(t1, s);
        b.alu_imm(AluOp::Shl, t1, 6);
        b.alu(AluOp::Add, addr, t1);
        b.alu_imm(AluOp::Add, addr, prime_addr(MONITOR_SET_BASE, 0) as i64);
        b.load(t1, MemRef::base(addr));
    });
    b.cmp_imm(w, 0);
    let probe_done = b.new_label();
    b.br(Cond::Eq, probe_done);
    b.alu_imm(AluOp::Sub, w, 1);
    b.jmp(probe_way_top);
    b.bind(probe_done);
    b.tag_next(InstTag::Time);
    b.rdtscp(t1);
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, t1, t0);
    b.tag_next(InstTag::Recover);
    b.cmp_imm(t1, params.probe_threshold);
    let fast = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Lt, fast);
    // The round number is the recorded mark: the warm-up round stores 0
    // (no flag), discarding its cold-instruction-cache noise for free.
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(addr, s);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, RESULT_BASE as i64);
        b.store(round, MemRef::base(addr));
    });
    b.bind(fast);
    b.alu_imm(AluOp::Add, s, 1);
    b.cmp_imm(s, n_sets);
    b.br(Cond::Lt, probe_set_top);

    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();

    Sample::new(
        b.build(),
        Victim::None,
        Label::Attack(AttackFamily::SpectrePrimeProbe),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cpu::{CpuConfig, Machine};

    fn recovered(sample: &Sample, n: u64) -> Vec<u64> {
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&sample.program, &sample.victim).expect("run");
        assert!(t.halted, "{} must halt", sample.name());
        (0..n)
            .filter(|i| m.read_word(RESULT_BASE + i * 8) != 0)
            .collect()
    }

    #[test]
    fn spectre_fr_v1_leaks_the_secret() {
        let params = PocParams::default();
        let hits = recovered(&spectre_fr_v1(&params), params.probe_lines);
        assert!(
            hits.contains(&params.spectre_secret),
            "transient leak must be recovered: {hits:?}"
        );
    }

    #[test]
    fn spectre_fr_v2_leaks_the_secret() {
        let params = PocParams::default();
        let hits = recovered(&spectre_fr_v2(&params), params.probe_lines);
        assert!(hits.contains(&params.spectre_secret), "{hits:?}");
    }

    #[test]
    fn spectre_fr_v3_leaks_the_secret() {
        let params = PocParams::default();
        let hits = recovered(&spectre_fr_v3(&params), params.probe_lines);
        assert!(hits.contains(&params.spectre_secret), "{hits:?}");
    }

    #[test]
    fn spectre_pp_detects_the_leak_set() {
        let params = PocParams::default();
        let hits = recovered(&spectre_pp_trippel(&params), params.probe_lines);
        assert!(hits.contains(&params.spectre_secret), "{hits:?}");
    }

    #[test]
    fn no_speculation_no_leak() {
        // With the speculative window disabled, the out-of-bounds value
        // never reaches the probe region: only the training line is hot.
        let params = PocParams::default();
        let s = spectre_fr_v1(&params);
        let mut m = Machine::new(CpuConfig {
            spec_window: 0,
            ..CpuConfig::default()
        });
        let _ = m.run(&s.program, &s.victim).expect("run");
        assert_eq!(
            m.read_word(RESULT_BASE + params.spectre_secret * 8),
            0,
            "secret line must stay cold without speculation"
        );
    }

    #[test]
    fn spectre_variants_have_no_victim() {
        let p = PocParams::default();
        for s in [spectre_fr_v1(&p), spectre_fr_v2(&p), spectre_pp_trippel(&p)] {
            assert!(matches!(s.victim, Victim::None));
        }
    }
}
