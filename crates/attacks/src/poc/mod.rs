//! The nine collected attack PoCs of Table II.
//!
//! Each generator returns a [`Sample`] pairing the attack program with the
//! victim model it expects. The implementations within one family differ
//! structurally (loop shapes, addressing modes, orderings, register
//! allocation) the way independently-written real PoCs do — that diversity
//! is what scenario S1 of Table V measures.
//!
//! All generators use registers `R0..=R10` only; `R11..=R15` are reserved
//! as scratch space for the mutation and obfuscation engines.

mod evict_reload;
mod flush_flush;
mod flush_reload;
mod prime_probe;
mod spectre;

pub use evict_reload::evict_reload_iaik;
pub use flush_flush::flush_flush_iaik;
pub use flush_reload::{
    flush_reload_calibrated, flush_reload_dormant, flush_reload_iaik, flush_reload_mastik,
    flush_reload_nepoche,
};
pub use prime_probe::{prime_probe_iaik, prime_probe_jzhang, prime_probe_percival};
pub use spectre::{spectre_fr_v1, spectre_fr_v2, spectre_fr_v3, spectre_pp_trippel};

use sca_isa::{AluOp, Cond, InstTag, MemRef, ProgramBuilder, Reg};

use crate::layout::CALIBRATION_BASE;
use crate::sample::{AttackFamily, Sample};

/// Emit the latency-calibration phase every PoC starts with (real PoCs
/// measure the hit/miss timing threshold before attacking): time a cold
/// load of a fresh calibration line, then a warm reload, tracking the
/// maximum hit latency. Deliberately `clflush`-free so the same utility
/// serves every family — shared measurement code is exactly what makes
/// real PoC codebases look alike.
///
/// Uses registers `R0, R2..R6` before the attack body initializes its own.
pub(crate) fn emit_load_calibration(b: &mut ProgramBuilder) {
    let (i, t0, t1, line, max) = (Reg::R4, Reg::R2, Reg::R3, Reg::R5, Reg::R6);
    b.mov_imm(max, 0);
    b.mov_imm(i, 0);
    let top = b.here();
    b.tagged(InstTag::Time, |b| {
        b.mov_reg(line, i);
        b.alu_imm(AluOp::Shl, line, 6);
        b.alu_imm(AluOp::Add, line, CALIBRATION_BASE as i64);
        // cold load (the line is fresh)
        b.rdtscp(t0);
        b.load(Reg::R0, MemRef::base(line));
        b.rdtscp(t1);
        b.alu(AluOp::Sub, t1, t0);
        b.cmp(t1, max);
    });
    let keep = b.new_label();
    b.tag_next(InstTag::Time);
    b.br(Cond::Le, keep);
    // (pure-register bookkeeping; not itself cache-relevant)
    b.mov_reg(max, t1);
    b.bind(keep);
    b.tagged(InstTag::Time, |b| {
        // warm reload of the same line
        b.rdtscp(t0);
        b.load(Reg::R0, MemRef::base(line));
        b.rdtscp(t1);
        b.alu(AluOp::Sub, t1, t0);
    });
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, 4);
    b.br(Cond::Lt, top);
}

/// Emit the result-aggregation epilogue every PoC ends with: scan the
/// per-line hit flags in the result region and store the index with the
/// most hits — the "recovered secret". Real PoC families share this kind
/// of reporting utility verbatim, which is one reason different attacks
/// from the same codebase look alike to a behavioral model.
pub(crate) fn emit_report(b: &mut ProgramBuilder, slots: u64) {
    let (i, v, addr, best, bestv) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    b.mov_imm(best, 0);
    b.mov_imm(bestv, 0);
    b.mov_imm(i, 0);
    let top = b.here();
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(addr, i);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, crate::layout::RESULT_BASE as i64);
        b.load(v, MemRef::base(addr));
        b.cmp(v, bestv);
    });
    let skip = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Le, skip);
    // (pure-register bookkeeping; not itself cache-relevant)
    b.mov_reg(bestv, v);
    b.mov_reg(best, i);
    b.bind(skip);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, slots as i64);
    b.br(Cond::Lt, top);
    // Final answer write-out — output bookkeeping (a real PoC's printf),
    // deliberately untagged: it is not part of the cache-attack behavior.
    b.store(
        best,
        MemRef::abs((crate::layout::RESULT_BASE + 0x1000) as i64),
    );
}

/// Shared parameters of every PoC generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PocParams {
    /// Number of monitored cache lines in the shared probe region.
    pub probe_lines: u64,
    /// Number of attack rounds (flush→victim→reload cycles).
    pub rounds: u64,
    /// Reload-latency threshold separating cache hits from misses.
    pub reload_threshold: i64,
    /// `clflush`-latency threshold for Flush+Flush (cached lines flush
    /// slower).
    pub flush_threshold: i64,
    /// Per-set probe-time threshold for the LLC Prime+Probe variants
    /// (PP-IAIK and Spectre-PP). Calibrated to the simulated latency
    /// model: an untouched set probes in ~570 cycles, a victim-touched
    /// set ~200 cycles slower (one extra LLC miss plus its knock-on
    /// L1 effects).
    pub probe_threshold: i64,
    /// Accumulated per-way probe-latency threshold for PP-Jzhang, whose
    /// probe times each way with its own `rdtscp` pair (untouched ~550,
    /// victim-touched ~750; the per-way pairs exclude the loop
    /// bookkeeping the one-pair-per-set variants include).
    pub probe_acc_threshold: i64,
    /// Per-set probe-time threshold for the L1 variant (PP-Percival):
    /// one victim access costs one L1 miss (an LLC hit, ~26 cycles) over
    /// the ~150-cycle all-L1-hit baseline.
    pub l1_probe_threshold: i64,
    /// Number of LLC sets a Prime+Probe attack monitors.
    pub prime_sets: u64,
    /// Lines loaded per monitored set when priming (LLC associativity).
    pub prime_ways: u64,
    /// Lines traversed per eviction set in Evict+Reload (> associativity).
    pub evict_ways: u64,
    /// Training iterations before each malicious Spectre access.
    pub training: u64,
    /// The in-simulation secret the Spectre gadget leaks
    /// (must be `< probe_lines`).
    pub spectre_secret: u64,
    /// The victim's secret sequence (one element consumed per `vyield`).
    pub secrets: Vec<u64>,
}

impl Default for PocParams {
    fn default() -> PocParams {
        PocParams {
            probe_lines: 16,
            rounds: 4,
            reload_threshold: 80,
            flush_threshold: 45,
            probe_threshold: 670,
            probe_acc_threshold: 650,
            l1_probe_threshold: 180,
            prime_sets: 8,
            prime_ways: crate::layout::LLC_WAYS,
            evict_ways: crate::layout::LLC_WAYS + 2,
            training: 6,
            spectre_secret: 7,
            secrets: vec![3, 3, 3, 3],
        }
    }
}

impl PocParams {
    /// Builder-style secret-sequence override.
    pub fn with_secrets(mut self, secrets: Vec<u64>) -> PocParams {
        self.secrets = secrets;
        self
    }

    /// Builder-style rounds override.
    pub fn with_rounds(mut self, rounds: u64) -> PocParams {
        self.rounds = rounds;
        self
    }
}

/// All nine collected PoCs in Table II order, with their attack families.
pub fn all_pocs(params: &PocParams) -> Vec<(Sample, AttackFamily)> {
    vec![
        (flush_reload_iaik(params), AttackFamily::FlushReload),
        (flush_reload_mastik(params), AttackFamily::FlushReload),
        (flush_reload_nepoche(params), AttackFamily::FlushReload),
        (flush_reload_calibrated(params), AttackFamily::FlushReload),
        (flush_flush_iaik(params), AttackFamily::FlushReload),
        (evict_reload_iaik(params), AttackFamily::FlushReload),
        (prime_probe_iaik(params), AttackFamily::PrimeProbe),
        (prime_probe_jzhang(params), AttackFamily::PrimeProbe),
        (prime_probe_percival(params), AttackFamily::PrimeProbe),
        (spectre_fr_v1(params), AttackFamily::SpectreFlushReload),
        (spectre_fr_v2(params), AttackFamily::SpectreFlushReload),
        (spectre_fr_v3(params), AttackFamily::SpectreFlushReload),
        (spectre_pp_trippel(params), AttackFamily::SpectrePrimeProbe),
    ]
}

/// The canonical representative PoC of each attack family (the single PoC
/// per type SCAGuard uses for attack-behavior modeling in Table VI).
pub fn representative(family: AttackFamily, params: &PocParams) -> Sample {
    match family {
        AttackFamily::FlushReload => flush_reload_iaik(params),
        AttackFamily::PrimeProbe => prime_probe_iaik(params),
        AttackFamily::SpectreFlushReload => spectre_fr_v1(params),
        AttackFamily::SpectrePrimeProbe => spectre_pp_trippel(params),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_poc_implementations() {
        let pocs = all_pocs(&PocParams::default());
        assert_eq!(pocs.len(), 13);
        let fr = pocs
            .iter()
            .filter(|(_, f)| *f == AttackFamily::FlushReload)
            .count();
        assert_eq!(fr, 6, "FR family: FR x4, FF, ER");
        let pp = pocs
            .iter()
            .filter(|(_, f)| *f == AttackFamily::PrimeProbe)
            .count();
        assert_eq!(pp, 3, "PP family: LLC x2, L1 x1");
    }

    #[test]
    fn every_poc_is_tagged_and_nonempty() {
        for (s, f) in all_pocs(&PocParams::default()) {
            assert!(s.program.has_attack_tags(), "{} untagged", s.name());
            assert!(s.program.len() > 10, "{} too small", s.name());
            let _ = f;
        }
    }

    #[test]
    fn representatives_cover_all_families() {
        let p = PocParams::default();
        for f in AttackFamily::ALL {
            let s = representative(f, &p);
            assert!(!s.program.is_empty());
        }
    }

    #[test]
    fn poc_names_are_distinct() {
        let pocs = all_pocs(&PocParams::default());
        let mut names: Vec<&str> = pocs.iter().map(|(s, _)| s.program.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }
}
