//! Evict+Reload (ER-IAIK): like Flush+Reload but evicts the monitored
//! shared lines by traversing per-set eviction sets instead of `clflush`,
//! so it works without flush instructions.

use sca_cpu::Victim;
use sca_isa::{AluOp, Cond, InstTag, MemRef, ProgramBuilder, Reg};

use crate::layout::{llc_set, prime_addr, LINE, LLC_SETS, RESULT_BASE, SHARED_BASE};
use crate::poc::PocParams;
use crate::sample::{AttackFamily, Label, Sample};

/// IAIK-style Evict+Reload over the shared probe region.
///
/// For each monitored line, the attacker loads `evict_ways` of its own
/// lines that map to the same LLC set (evicting the target under any
/// reasonable replacement policy), lets the victim run, then reloads the
/// target with timing.
pub fn evict_reload_iaik(params: &PocParams) -> Sample {
    let mut b = ProgramBuilder::new("ER-IAIK");
    crate::poc::emit_load_calibration(&mut b);
    let (i, w, addr, t0, t1) = (Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    let (round, mark) = (Reg::R7, Reg::R9);

    // The shared region is laid out so line `i` falls in LLC set
    // `base_set + i`; the eviction set for line `i` therefore starts at the
    // attacker's conflict address for that set.
    let base_set = llc_set(SHARED_BASE);

    b.mov_imm(mark, 1);
    b.mov_imm(round, 0);
    let round_top = b.here();
    b.mov_imm(i, 0);
    let line_top = b.here();

    // Evict step: traverse the eviction set of line i.
    b.mov_imm(w, 0);
    let evict_top = b.here();
    b.tagged(InstTag::Evict, |b| {
        // addr = prime_addr(base_set + i, w) = ATTACKER + w*SETS*LINE + (base_set+i)*LINE
        b.mov_reg(addr, w);
        b.alu_imm(AluOp::Mul, addr, (LLC_SETS * LINE) as i64);
        b.alu_imm(AluOp::Add, addr, prime_addr(base_set, 0) as i64);
        b.mov_reg(t0, i);
        b.alu_imm(AluOp::Shl, t0, 6);
        b.alu(AluOp::Add, addr, t0);
        b.load(t1, MemRef::base(addr));
    });
    b.alu_imm(AluOp::Add, w, 1);
    b.cmp_imm(w, params.evict_ways as i64);
    b.br(Cond::Lt, evict_top);

    b.vyield();

    // Reload step: timed re-access of the target line.
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 6);
    b.alu_imm(AluOp::Add, addr, SHARED_BASE as i64);
    b.tag_next(InstTag::Time);
    b.rdtscp(t0);
    b.tag_next(InstTag::Reload);
    b.load(t1, MemRef::base(addr));
    b.tag_next(InstTag::Time);
    b.rdtscp(w); // reuse w as t1 before it is reset
    b.tag_next(InstTag::Time);
    b.alu(AluOp::Sub, w, t0);
    b.tag_next(InstTag::Recover);
    b.cmp_imm(w, params.reload_threshold);
    let slow = b.new_label();
    b.tag_next(InstTag::Recover);
    b.br(Cond::Ge, slow);
    b.tagged(InstTag::Recover, |b| {
        b.mov_reg(addr, i);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, RESULT_BASE as i64);
        b.store(mark, MemRef::base(addr));
    });
    b.bind(slow);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, params.probe_lines as i64);
    b.br(Cond::Lt, line_top);
    b.alu_imm(AluOp::Add, round, 1);
    b.cmp_imm(round, params.rounds as i64);
    b.br(Cond::Lt, round_top);
    crate::poc::emit_report(&mut b, params.probe_lines);
    b.halt();

    Sample::new(
        b.build(),
        Victim::shared_memory(SHARED_BASE, LINE, params.secrets.clone()),
        Label::Attack(AttackFamily::FlushReload),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cpu::{CpuConfig, Machine};

    #[test]
    fn er_contains_no_clflush() {
        let s = evict_reload_iaik(&PocParams::default());
        assert!(
            !s.program
                .insts()
                .iter()
                .any(|i| matches!(i, sca_isa::Inst::Clflush { .. })),
            "Evict+Reload must not use clflush"
        );
    }

    #[test]
    fn er_recovers_the_secret_line() {
        let params = PocParams::default().with_secrets(vec![4]);
        let s = evict_reload_iaik(&params);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &s.victim).expect("run");
        assert!(t.halted);
        let hits: Vec<u64> = (0..params.probe_lines)
            .filter(|i| m.read_word(RESULT_BASE + i * 8) != 0)
            .collect();
        assert!(hits.contains(&4), "secret line must be recovered: {hits:?}");
    }

    #[test]
    fn er_has_evict_tags_and_no_flush_tags() {
        let s = evict_reload_iaik(&PocParams::default());
        let tags: std::collections::BTreeSet<_> = s.program.tags().map(|(_, t)| t).collect();
        assert!(tags.contains(&InstTag::Evict));
        assert!(!tags.contains(&InstTag::Flush));
    }
}
