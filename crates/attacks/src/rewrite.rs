//! Program-rewriting support shared by the mutation and obfuscation
//! engines: expand each instruction into a replacement sequence while
//! keeping every branch target consistent.

use std::collections::BTreeMap;

use sca_isa::{Inst, Program};

/// Branch-target sentinel usable inside expansion sequences: resolves to
/// the *last* instruction of the expansion it appears in (by convention the
/// original instruction), letting bogus-control-flow guards jump over their
/// own junk.
pub(crate) const EXPANSION_END: usize = usize::MAX;

/// Rewrite `program` by replacing each instruction `i` with
/// `f(i, inst)`'s sequence.
///
/// Rules the callback must follow:
///
/// * the returned sequence must be semantically equivalent to the original
///   instruction (junk may only touch dead registers and dead flags);
/// * branches inside returned sequences may target any *old* instruction
///   index — they are remapped to the new position of that instruction's
///   expansion — or [`EXPANSION_END`] to land on the expansion's own last
///   instruction;
/// * the returned sequence must be nonempty.
///
/// Branch targets elsewhere in the program are remapped to the first
/// instruction of the target's expansion, and instruction tags are carried
/// over to every instruction of the tagged instruction's expansion.
///
/// # Panics
///
/// Panics if `f` returns an empty sequence.
pub(crate) fn expand_program(
    program: &Program,
    name: impl Into<String>,
    mut f: impl FnMut(usize, &Inst) -> Vec<Inst>,
) -> Program {
    let n = program.len();
    let mut expansions: Vec<Vec<Inst>> = Vec::with_capacity(n);
    let mut new_pos: Vec<usize> = Vec::with_capacity(n);
    let mut pos = 0usize;
    for (i, inst) in program.insts().iter().enumerate() {
        let exp = f(i, inst);
        assert!(!exp.is_empty(), "expansion of instruction {i} is empty");
        new_pos.push(pos);
        pos += exp.len();
        expansions.push(exp);
    }

    let mut insts = Vec::with_capacity(pos);
    let mut tags = BTreeMap::new();
    for (i, exp) in expansions.into_iter().enumerate() {
        let exp_last = new_pos[i] + exp.len() - 1;
        for inst in exp {
            let remapped = inst.map_target(|t| {
                if t == EXPANSION_END {
                    exp_last
                } else {
                    new_pos[t]
                }
            });
            if let Some(tag) = program.tag(i) {
                tags.insert(insts.len(), tag);
            }
            insts.push(remapped);
        }
    }
    Program::from_parts(name, insts, tags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_isa::{AluOp, Cond, InstTag, MemRef, ProgramBuilder, Reg};

    fn looped() -> Program {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        let top = b.here();
        b.tag_next(InstTag::Reload);
        b.load(Reg::R1, MemRef::abs(0x1000));
        b.alu_imm(AluOp::Add, Reg::R0, 1);
        b.cmp_imm(Reg::R0, 3);
        b.br(Cond::Lt, top);
        b.halt();
        b.build()
    }

    #[test]
    fn identity_expansion_preserves_program() {
        let p = looped();
        let q = expand_program(&p, "t2", |_, inst| vec![*inst]);
        assert_eq!(p.insts(), q.insts());
        assert_eq!(p.tags().collect::<Vec<_>>(), q.tags().collect::<Vec<_>>());
    }

    #[test]
    fn nop_prefix_shifts_branch_targets() {
        let p = looped();
        let q = expand_program(&p, "t2", |_, inst| vec![Inst::Nop, *inst]);
        assert_eq!(q.len(), p.len() * 2);
        // the loop branch must point at the Nop preceding the old target
        let br = q
            .insts()
            .iter()
            .find_map(|i| i.branch_target())
            .expect("branch");
        assert_eq!(br, 2, "old target 1 -> new position 2");
        assert_eq!(q.insts()[br], Inst::Nop);
    }

    #[test]
    fn tags_cover_whole_expansion() {
        let p = looped();
        let q = expand_program(&p, "t2", |_, inst| vec![Inst::Nop, *inst]);
        // old instruction 1 was tagged Reload; its expansion occupies 2..4
        assert_eq!(q.tag(2), Some(InstTag::Reload));
        assert_eq!(q.tag(3), Some(InstTag::Reload));
        assert_eq!(q.tag(0), None);
    }

    #[test]
    fn expansion_branches_target_old_indices() {
        let p = looped();
        // insert an opaque never-taken branch to old index 5 (halt)
        let q = expand_program(&p, "t2", |i, inst| {
            if i == 2 {
                vec![
                    Inst::Cmp {
                        lhs: Reg::R9,
                        rhs: sca_isa::Operand::Reg(Reg::R9),
                    },
                    Inst::Br {
                        cond: Cond::Ne,
                        target: 5,
                    },
                    *inst,
                ]
            } else {
                vec![*inst]
            }
        });
        let br_targets: Vec<usize> = q.insts().iter().filter_map(|i| i.branch_target()).collect();
        // loop branch (old target 1 -> 1) and opaque branch (old 5 -> 7)
        assert!(br_targets.contains(&7), "{br_targets:?}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_expansion_panics() {
        let p = looped();
        let _ = expand_program(&p, "t2", |_, _| vec![]);
    }
}
