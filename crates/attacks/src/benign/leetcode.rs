//! LeetCode-style benign kernels: sorts, searches, dynamic programming.

use sca_isa::rng::SmallRng;

use sca_isa::{AluOp, Cond, MemRef, ProgramBuilder, Reg};

use crate::layout::BENIGN_BASE;
use crate::sample::Sample;

/// Emit a loop initializing `n` words at `base` with a cheap in-program
/// PRNG (`x = x * a + c` style), so the data is seed-dependent without a
/// store per element in the program text.
pub(crate) fn emit_array_init(b: &mut ProgramBuilder, base: u64, n: i64, mul: i64, add: i64) {
    let (i, x, addr) = (Reg::R1, Reg::R2, Reg::R3);
    b.mov_imm(i, 0);
    b.mov_imm(x, add);
    let top = b.here();
    b.alu_imm(AluOp::Mul, x, mul);
    b.alu_imm(AluOp::Add, x, add);
    b.alu_imm(AluOp::And, x, 0xffff);
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, base as i64);
    b.store(x, MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, top);
}

/// Pick and emit one of the LeetCode-style kernels.
pub fn generate(rng: &mut SmallRng) -> Sample {
    let kernel = rng.gen_range(0..14u32);
    let n = rng.gen_range(24..96i64);
    let mul = rng.gen_range(3..9i64) * 2 + 1;
    let add = rng.gen_range(1..1000i64);
    match kernel {
        0 => bubble_sort(n, mul, add),
        1 => binary_search(n, mul, add, rng.gen_range(1..200)),
        2 => two_sum(n, mul, add, rng.gen_range(100..2000)),
        3 => fib_dp(n + 20, add),
        4 => max_subarray(n, mul, add),
        5 => prefix_sums(n, mul, add),
        6 => matrix_transpose(rng.gen_range(5..12), mul, add),
        7 => rolling_hash(n, mul, add),
        8 => quicksort(n, mul, add),
        9 => string_search(n + 40, mul, add),
        10 => graph_bfs(1 << rng.gen_range(4..6u32), mul, add),
        11 => radix_sort(n, mul, add),
        12 => tokenizer(n + 60, mul, add),
        _ => lru_sim(n, rng.gen_range(4..9), mul, add),
    }
}

/// Iterative quicksort (Lomuto partition) with an explicit stack of
/// `(lo, hi)` ranges kept in memory — exercises pointer-style data
/// structures no other kernel has.
fn quicksort(n: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-qsort-{n}-{mul}-{add}"));
    emit_array_init(&mut b, BENIGN_BASE, n, mul, add);
    let stack = (BENIGN_BASE + 0x30000) as i64;
    let (sp, lo, hi, i, j, addr) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    let (pivot, v, tmp) = (Reg::R7, Reg::R8, Reg::R9);

    // push (0, n-1)
    b.mov_imm(sp, stack);
    b.mov_imm(lo, 0);
    b.store(lo, MemRef::base(sp));
    b.mov_imm(hi, n - 1);
    b.store(hi, MemRef::base_disp(sp, 8));
    b.alu_imm(AluOp::Add, sp, 16);

    let loop_top = b.here();
    // empty stack => done
    b.cmp_imm(sp, stack);
    let done = b.new_label();
    b.br(Cond::Le, done);
    // pop (lo, hi)
    b.alu_imm(AluOp::Sub, sp, 16);
    b.load(lo, MemRef::base(sp));
    b.load(hi, MemRef::base_disp(sp, 8));
    b.cmp(lo, hi);
    b.br(Cond::Ge, loop_top);

    // Lomuto partition with pivot = a[hi]
    b.mov_reg(addr, hi);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(pivot, MemRef::base(addr));
    b.mov_reg(i, lo);
    b.mov_reg(j, lo);
    let part_top = b.here();
    b.cmp(j, hi);
    let part_done = b.new_label();
    b.br(Cond::Ge, part_done);
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(v, MemRef::base(addr));
    b.cmp(v, pivot);
    let no_swap = b.new_label();
    b.br(Cond::Ge, no_swap);
    // swap a[i], a[j]
    b.mov_reg(tmp, i);
    b.alu_imm(AluOp::Shl, tmp, 3);
    b.alu_imm(AluOp::Add, tmp, BENIGN_BASE as i64);
    b.load(Reg::R10, MemRef::base(tmp));
    b.store(v, MemRef::base(tmp));
    b.store(Reg::R10, MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.bind(no_swap);
    b.alu_imm(AluOp::Add, j, 1);
    b.jmp(part_top);
    b.bind(part_done);
    // swap a[i], a[hi] (pivot into place)
    b.mov_reg(addr, hi);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.mov_reg(tmp, i);
    b.alu_imm(AluOp::Shl, tmp, 3);
    b.alu_imm(AluOp::Add, tmp, BENIGN_BASE as i64);
    b.load(Reg::R10, MemRef::base(tmp));
    b.store(pivot, MemRef::base(tmp));
    b.store(Reg::R10, MemRef::base(addr));

    // push (lo, i-1) if nonempty (guards unsigned underflow at i == 0)
    b.cmp(i, lo);
    let skip_left = b.new_label();
    b.br(Cond::Le, skip_left);
    b.mov_reg(tmp, i);
    b.alu_imm(AluOp::Sub, tmp, 1);
    b.store(lo, MemRef::base(sp));
    b.store(tmp, MemRef::base_disp(sp, 8));
    b.alu_imm(AluOp::Add, sp, 16);
    b.bind(skip_left);
    // push (i+1, hi) if nonempty
    b.mov_reg(tmp, i);
    b.alu_imm(AluOp::Add, tmp, 1);
    b.cmp(tmp, hi);
    let skip_right = b.new_label();
    b.br(Cond::Ge, skip_right);
    b.store(tmp, MemRef::base(sp));
    b.store(hi, MemRef::base_disp(sp, 8));
    b.alu_imm(AluOp::Add, sp, 16);
    b.bind(skip_right);
    b.jmp(loop_top);

    b.bind(done);
    b.halt();
    Sample::benign(b.build())
}

/// Naive substring search: count occurrences of a short pattern in a
/// pseudo-random byte string (two nested scans with early exit).
fn string_search(n: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-strstr-{n}-{mul}-{add}"));
    emit_array_init(&mut b, BENIGN_BASE, n, mul, add);
    // pattern = first 3 elements of the text itself (guaranteed >= 1 match)
    let (i, j, addr, tv, pv, count) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    b.mov_imm(count, 0);
    b.mov_imm(i, 0);
    let outer = b.here();
    b.mov_imm(j, 0);
    let inner = b.here();
    // tv = text[i + j]
    b.mov_reg(addr, i);
    b.alu(AluOp::Add, addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(tv, MemRef::base(addr));
    // pv = text[j] (the pattern)
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(pv, MemRef::base(addr));
    b.cmp(tv, pv);
    let mismatch = b.new_label();
    b.br(Cond::Ne, mismatch);
    b.alu_imm(AluOp::Add, j, 1);
    b.cmp_imm(j, 3);
    b.br(Cond::Lt, inner);
    b.alu_imm(AluOp::Add, count, 1);
    b.bind(mismatch);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n - 3);
    b.br(Cond::Lt, outer);
    b.store(count, MemRef::abs((BENIGN_BASE + 0x10000) as i64));
    b.halt();
    Sample::benign(b.build())
}

/// Software LRU simulation: a move-to-front list of `ways` slots over a
/// request stream, counting hits — a miniature of what buffer caches do.
fn lru_sim(n_requests: i64, ways: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-lru-{n_requests}-{ways}-{mul}"));
    emit_array_init(&mut b, BENIGN_BASE, n_requests, mul, add);
    let slots = (BENIGN_BASE + 0x40000) as i64;
    let (i, key, w, addr, v, hits, tmp) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    );
    b.mov_imm(hits, 0);
    b.mov_imm(i, 0);
    let top = b.here();
    // key = requests[i] & 0xf | 1
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(key, MemRef::base(addr));
    b.alu_imm(AluOp::And, key, 0xf);
    b.alu_imm(AluOp::Or, key, 1);
    // scan slots for the key
    b.mov_imm(w, 0);
    let scan = b.here();
    b.mov_reg(addr, w);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, slots);
    b.load(v, MemRef::base(addr));
    b.cmp(v, key);
    let found = b.new_label();
    b.br(Cond::Eq, found);
    b.alu_imm(AluOp::Add, w, 1);
    b.cmp_imm(w, ways);
    b.br(Cond::Lt, scan);
    // miss: shift everything down one slot, insert at front
    b.mov_imm(w, ways - 1);
    let shift = b.here();
    b.cmp_imm(w, 0);
    let insert = b.new_label();
    b.br(Cond::Le, insert);
    b.mov_reg(addr, w);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, slots);
    b.load(tmp, MemRef::base_disp(addr, -8));
    b.store(tmp, MemRef::base(addr));
    b.alu_imm(AluOp::Sub, w, 1);
    b.jmp(shift);
    b.bind(insert);
    b.store(key, MemRef::abs(slots));
    let next = b.new_label();
    b.jmp(next);
    b.bind(found);
    b.alu_imm(AluOp::Add, hits, 1);
    b.bind(next);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n_requests);
    b.br(Cond::Lt, top);
    b.store(hits, MemRef::abs((BENIGN_BASE + 0x10000) as i64));
    b.halt();
    Sample::benign(b.build())
}

fn bubble_sort(n: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-bubble-{n}-{mul}-{add}"));
    emit_array_init(&mut b, BENIGN_BASE, n, mul, add);
    let (i, j, ai, aj, va, vb) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    b.mov_imm(i, 0);
    let outer = b.here();
    b.mov_imm(j, 0);
    let inner = b.here();
    // load a[j], a[j+1]
    b.mov_reg(ai, j);
    b.alu_imm(AluOp::Shl, ai, 3);
    b.alu_imm(AluOp::Add, ai, BENIGN_BASE as i64);
    b.mov_reg(aj, ai);
    b.alu_imm(AluOp::Add, aj, 8);
    b.load(va, MemRef::base(ai));
    b.load(vb, MemRef::base(aj));
    b.cmp(va, vb);
    let no_swap = b.new_label();
    b.br(Cond::Le, no_swap);
    b.store(vb, MemRef::base(ai));
    b.store(va, MemRef::base(aj));
    b.bind(no_swap);
    b.alu_imm(AluOp::Add, j, 1);
    b.cmp_imm(j, n - 1);
    b.br(Cond::Lt, inner);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, outer);
    b.halt();
    Sample::benign(b.build())
}

fn binary_search(n: i64, mul: i64, add: i64, target: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-bsearch-{n}-{mul}-{target}"));
    // sorted array: a[i] = i * mul + add
    let (i, x, addr) = (Reg::R1, Reg::R2, Reg::R3);
    b.mov_imm(i, 0);
    let init = b.here();
    b.mov_reg(x, i);
    b.alu_imm(AluOp::Mul, x, mul);
    b.alu_imm(AluOp::Add, x, add);
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.store(x, MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, init);

    // repeated searches for target+k
    let (lo, hi, mid, v, t, k) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9);
    b.mov_imm(k, 0);
    let search_top = b.here();
    b.mov_imm(lo, 0);
    b.mov_imm(hi, n);
    b.mov_imm(t, target);
    b.alu(AluOp::Add, t, k);
    let loop_top = b.here();
    b.cmp(lo, hi);
    let done = b.new_label();
    b.br(Cond::Ge, done);
    b.mov_reg(mid, lo);
    b.alu(AluOp::Add, mid, hi);
    b.alu_imm(AluOp::Shr, mid, 1);
    b.mov_reg(addr, mid);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(v, MemRef::base(addr));
    b.cmp(v, t);
    let go_right = b.new_label();
    b.br(Cond::Lt, go_right);
    b.mov_reg(hi, mid);
    b.jmp(loop_top);
    b.bind(go_right);
    b.mov_reg(lo, mid);
    b.alu_imm(AluOp::Add, lo, 1);
    b.jmp(loop_top);
    b.bind(done);
    b.alu_imm(AluOp::Add, k, 7);
    b.cmp_imm(k, 20 * 7);
    b.br(Cond::Lt, search_top);
    b.halt();
    Sample::benign(b.build())
}

fn two_sum(n: i64, mul: i64, add: i64, target: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-twosum-{n}-{mul}-{target}"));
    emit_array_init(&mut b, BENIGN_BASE, n, mul, add);
    let (i, j, ai, aj, va, vb, sum) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    );
    b.mov_imm(i, 0);
    let outer = b.here();
    b.mov_reg(j, i);
    b.alu_imm(AluOp::Add, j, 1);
    let inner = b.here();
    b.mov_reg(ai, i);
    b.alu_imm(AluOp::Shl, ai, 3);
    b.alu_imm(AluOp::Add, ai, BENIGN_BASE as i64);
    b.load(va, MemRef::base(ai));
    b.mov_reg(aj, j);
    b.alu_imm(AluOp::Shl, aj, 3);
    b.alu_imm(AluOp::Add, aj, BENIGN_BASE as i64);
    b.load(vb, MemRef::base(aj));
    b.mov_reg(sum, va);
    b.alu(AluOp::Add, sum, vb);
    b.cmp_imm(sum, target);
    let not_found = b.new_label();
    b.br(Cond::Ne, not_found);
    // record the pair
    b.store(va, MemRef::abs((BENIGN_BASE + 0x10000) as i64));
    b.store(vb, MemRef::abs((BENIGN_BASE + 0x10008) as i64));
    b.bind(not_found);
    b.alu_imm(AluOp::Add, j, 1);
    b.cmp_imm(j, n);
    b.br(Cond::Lt, inner);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n - 1);
    b.br(Cond::Lt, outer);
    b.halt();
    Sample::benign(b.build())
}

fn fib_dp(n: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-fib-{n}-{add}"));
    let (i, addr, a, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R5);
    // dp[0] = 1, dp[1] = add
    b.mov_imm(a, 1);
    b.store(a, MemRef::abs(BENIGN_BASE as i64));
    b.mov_imm(a, add);
    b.store(a, MemRef::abs(BENIGN_BASE as i64 + 8));
    b.mov_imm(i, 2);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(a, MemRef::base_disp(addr, -8));
    b.load(c, MemRef::base_disp(addr, -16));
    b.alu(AluOp::Add, a, c);
    b.alu_imm(AluOp::And, a, 0xffff_ffff);
    b.store(a, MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, top);
    b.halt();
    Sample::benign(b.build())
}

fn max_subarray(n: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-kadane-{n}-{mul}-{add}"));
    emit_array_init(&mut b, BENIGN_BASE, n, mul, add);
    let (i, addr, v, cur, best) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    b.mov_imm(cur, 0);
    b.mov_imm(best, 0);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(v, MemRef::base(addr));
    b.alu_imm(AluOp::Sub, v, 0x8000); // center values around zero-ish
    b.alu(AluOp::Add, cur, v);
    b.cmp_imm(cur, 0);
    let keep = b.new_label();
    b.br(Cond::Ge, keep);
    b.mov_imm(cur, 0);
    b.bind(keep);
    b.cmp(cur, best);
    let no_update = b.new_label();
    b.br(Cond::Le, no_update);
    b.mov_reg(best, cur);
    b.bind(no_update);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, top);
    b.store(best, MemRef::abs((BENIGN_BASE + 0x10000) as i64));
    b.halt();
    Sample::benign(b.build())
}

fn prefix_sums(n: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-prefix-{n}-{mul}-{add}"));
    emit_array_init(&mut b, BENIGN_BASE, n, mul, add);
    let (i, addr, v, acc, out) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    b.mov_imm(acc, 0);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(v, MemRef::base(addr));
    b.alu(AluOp::Add, acc, v);
    b.mov_reg(out, addr);
    b.alu_imm(AluOp::Add, out, 0x8000);
    b.store(acc, MemRef::base(out));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, top);
    b.halt();
    Sample::benign(b.build())
}

fn matrix_transpose(dim: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-transpose-{dim}-{mul}"));
    emit_array_init(&mut b, BENIGN_BASE, dim * dim, mul, add);
    let (i, j, src, dst, v, t) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    b.mov_imm(i, 0);
    let outer = b.here();
    b.mov_imm(j, 0);
    let inner = b.here();
    // src = base + (i*dim + j)*8 ; dst = out + (j*dim + i)*8
    b.mov_reg(src, i);
    b.alu_imm(AluOp::Mul, src, dim);
    b.alu(AluOp::Add, src, j);
    b.alu_imm(AluOp::Shl, src, 3);
    b.alu_imm(AluOp::Add, src, BENIGN_BASE as i64);
    b.mov_reg(dst, j);
    b.alu_imm(AluOp::Mul, dst, dim);
    b.alu(AluOp::Add, dst, i);
    b.alu_imm(AluOp::Shl, dst, 3);
    b.alu_imm(AluOp::Add, dst, (BENIGN_BASE + 0x20000) as i64);
    b.load(v, MemRef::base(src));
    b.store(v, MemRef::base(dst));
    b.mov_reg(t, v);
    b.alu_imm(AluOp::Add, j, 1);
    b.cmp_imm(j, dim);
    b.br(Cond::Lt, inner);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, dim);
    b.br(Cond::Lt, outer);
    b.halt();
    Sample::benign(b.build())
}

fn rolling_hash(n: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-hash-{n}-{mul}-{add}"));
    emit_array_init(&mut b, BENIGN_BASE, n, mul, add);
    let (i, addr, v, h) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(h, 5381);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(v, MemRef::base(addr));
    b.alu_imm(AluOp::Mul, h, 33);
    b.alu(AluOp::Xor, h, v);
    b.alu_imm(AluOp::And, h, 0x7fff_ffff);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, top);
    b.store(h, MemRef::abs((BENIGN_BASE + 0x10000) as i64));
    b.halt();
    Sample::benign(b.build())
}

/// Breadth-first search over a synthetic out-degree-2 digraph stored as
/// an adjacency array, with an explicit in-memory queue and visited map —
/// irregular, data-dependent pointer-ish traffic no other kernel has.
fn graph_bfs(nodes: i64, mul: i64, add: i64) -> Sample {
    assert!(
        nodes.count_ones() == 1,
        "graph_bfs needs a power-of-two node count"
    );
    let mut b = ProgramBuilder::new(format!("leet-bfs-{nodes}-{mul}-{add}"));
    let adj = BENIGN_BASE as i64; // adj[2i], adj[2i+1]
    let visited = (BENIGN_BASE + 0x10000) as i64;
    let queue = (BENIGN_BASE + 0x20000) as i64;
    let (i, x, addr, head, tail, v) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    let count = Reg::R7;

    // adjacency: adj[2i] = (i*mul + add) % nodes, adj[2i+1] = (i + add) % nodes
    b.mov_imm(i, 0);
    let init_top = b.here();
    b.mov_reg(x, i);
    b.alu_imm(AluOp::Mul, x, mul);
    b.alu_imm(AluOp::Add, x, add);
    b.alu_imm(AluOp::And, x, nodes - 1);
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 4);
    b.alu_imm(AluOp::Add, addr, adj);
    b.store(x, MemRef::base(addr));
    b.mov_reg(x, i);
    b.alu_imm(AluOp::Add, x, add);
    b.alu_imm(AluOp::And, x, nodes - 1);
    b.store(x, MemRef::base_disp(addr, 8));
    // visited[i] = 0
    b.mov_imm(x, 0);
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, visited);
    b.store(x, MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, nodes);
    b.br(Cond::Lt, init_top);

    // queue = [0]; visited[0] = 1
    b.mov_imm(x, 0);
    b.store(x, MemRef::abs(queue));
    b.mov_imm(x, 1);
    b.store(x, MemRef::abs(visited));
    b.mov_imm(head, 0);
    b.mov_imm(tail, 1);
    b.mov_imm(count, 1);

    // while head < tail: pop, push unvisited neighbors
    let loop_top = b.here();
    b.cmp(head, tail);
    let done = b.new_label();
    b.br(Cond::Ge, done);
    b.mov_reg(addr, head);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, queue);
    b.load(v, MemRef::base(addr));
    b.alu_imm(AluOp::Add, head, 1);
    for slot in 0..2i64 {
        // x = adj[2v + slot]
        b.mov_reg(addr, v);
        b.alu_imm(AluOp::Shl, addr, 4);
        b.alu_imm(AluOp::Add, addr, adj + slot * 8);
        b.load(x, MemRef::base(addr));
        // if !visited[x] { visited[x] = 1; queue[tail++] = x; count += 1 }
        b.mov_reg(addr, x);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, visited);
        b.load(i, MemRef::base(addr));
        b.cmp_imm(i, 0);
        let seen = b.new_label();
        b.br(Cond::Ne, seen);
        b.mov_imm(i, 1);
        b.store(i, MemRef::base(addr));
        b.mov_reg(addr, tail);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, queue);
        b.store(x, MemRef::base(addr));
        b.alu_imm(AluOp::Add, tail, 1);
        b.alu_imm(AluOp::Add, count, 1);
        b.bind(seen);
    }
    b.jmp(loop_top);
    b.bind(done);
    b.store(count, MemRef::abs((BENIGN_BASE + 0x30000) as i64));
    b.halt();
    Sample::benign(b.build())
}

/// LSD radix sort over 16-bit keys: two counting passes (256 buckets),
/// prefix sums, and a scatter into a second buffer — bursty, strided
/// bucket traffic unlike the comparison sorts.
fn radix_sort(n: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-radix-{n}-{mul}-{add}"));
    emit_array_init(&mut b, BENIGN_BASE, n, mul, add);
    let src0 = BENIGN_BASE as i64;
    let dst0 = (BENIGN_BASE + 0x20000) as i64;
    let buckets = (BENIGN_BASE + 0x40000) as i64;
    let (i, x, addr, d, acc, v) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    let (src, dst) = (Reg::R7, Reg::R8);

    b.mov_imm(src, src0);
    b.mov_imm(dst, dst0);
    b.mov_imm(d, 0);
    let digit_top = b.here();

    // clear buckets
    b.mov_imm(i, 0);
    b.mov_imm(x, 0);
    let clear_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, buckets);
    b.store(x, MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, 256);
    b.br(Cond::Lt, clear_top);

    // count digit occurrences
    b.mov_imm(i, 0);
    let count_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu(AluOp::Add, addr, src);
    b.load(x, MemRef::base(addr));
    b.mov_reg(v, d);
    b.alu_imm(AluOp::Shl, v, 3);
    b.alu(AluOp::Shr, x, v);
    b.alu_imm(AluOp::And, x, 0xff);
    b.alu_imm(AluOp::Shl, x, 3);
    b.alu_imm(AluOp::Add, x, buckets);
    b.load(v, MemRef::base(x));
    b.alu_imm(AluOp::Add, v, 1);
    b.store(v, MemRef::base(x));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, count_top);

    // exclusive prefix sums
    b.mov_imm(i, 0);
    b.mov_imm(acc, 0);
    let prefix_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, buckets);
    b.load(x, MemRef::base(addr));
    b.store(acc, MemRef::base(addr));
    b.alu(AluOp::Add, acc, x);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, 256);
    b.br(Cond::Lt, prefix_top);

    // scatter
    b.mov_imm(i, 0);
    let scatter_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu(AluOp::Add, addr, src);
    b.load(x, MemRef::base(addr));
    b.mov_reg(v, d);
    b.alu_imm(AluOp::Shl, v, 3);
    b.mov_reg(acc, x);
    b.alu(AluOp::Shr, acc, v);
    b.alu_imm(AluOp::And, acc, 0xff);
    b.alu_imm(AluOp::Shl, acc, 3);
    b.alu_imm(AluOp::Add, acc, buckets);
    b.load(v, MemRef::base(acc));
    // dst[bucket slot] = x; bucket += 1
    b.alu_imm(AluOp::Shl, v, 3);
    b.alu(AluOp::Add, v, dst);
    b.store(x, MemRef::base(v));
    b.load(v, MemRef::base(acc));
    b.alu_imm(AluOp::Add, v, 1);
    b.store(v, MemRef::base(acc));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, scatter_top);

    // swap src/dst, next digit
    b.mov_reg(x, src);
    b.mov_reg(src, dst);
    b.mov_reg(dst, x);
    b.alu_imm(AluOp::Add, d, 1);
    b.cmp_imm(d, 2);
    b.br(Cond::Lt, digit_top);
    b.halt();
    Sample::benign(b.build())
}

/// A table-driven DFA tokenizer: classify each input byte through a
/// 4-class map, step a 4-state transition table, and count token
/// boundaries — the state-machine scan shape of a real lexer.
fn tokenizer(len: i64, mul: i64, add: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("leet-tok-{len}-{mul}-{add}"));
    emit_array_init(&mut b, BENIGN_BASE, len, mul, add);
    let table = (BENIGN_BASE + 0x40000) as i64; // 4 states x 4 classes
    let (i, byte, cls, state, addr, tokens) =
        (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);

    // transition table: next = (state + class + 1) % 4, but class 0 resets
    // to state 0 (delimiter); a transition into state 1 marks a new token
    b.mov_imm(i, 0);
    let table_top = b.here();
    b.mov_reg(cls, i);
    b.alu_imm(AluOp::And, cls, 3); // class = i % 4
    b.mov_reg(state, i);
    b.alu_imm(AluOp::Shr, state, 2); // state = i / 4
    b.mov_reg(byte, state);
    b.alu(AluOp::Add, byte, cls);
    b.alu_imm(AluOp::Add, byte, 1);
    b.alu_imm(AluOp::And, byte, 3);
    b.cmp_imm(cls, 0);
    let keep = b.new_label();
    b.br(Cond::Ne, keep);
    b.mov_imm(byte, 0);
    b.bind(keep);
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, table);
    b.store(byte, MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, 16);
    b.br(Cond::Lt, table_top);

    // scan the input
    b.mov_imm(state, 0);
    b.mov_imm(tokens, 0);
    b.mov_imm(i, 0);
    let scan_top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(byte, MemRef::base(addr));
    b.mov_reg(cls, byte);
    b.alu_imm(AluOp::And, cls, 3);
    // state = table[state*4 + cls]
    b.mov_reg(addr, state);
    b.alu_imm(AluOp::Shl, addr, 2);
    b.alu(AluOp::Add, addr, cls);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, table);
    b.load(state, MemRef::base(addr));
    // token boundary: state == 1
    b.cmp_imm(state, 1);
    let not_tok = b.new_label();
    b.br(Cond::Ne, not_tok);
    b.alu_imm(AluOp::Add, tokens, 1);
    b.bind(not_tok);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, len);
    b.br(Cond::Lt, scan_top);
    b.store(tokens, MemRef::abs((BENIGN_BASE + 0x30000) as i64));
    b.halt();
    Sample::benign(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cpu::{CpuConfig, Machine, Victim};

    #[test]
    fn all_kernels_halt() {
        for seed in 0..16u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = generate(&mut rng);
            let mut m = Machine::new(CpuConfig::default());
            let t = m.run(&s.program, &Victim::None).expect("run");
            assert!(t.halted, "{} (seed {seed}) did not halt", s.name());
        }
    }

    #[test]
    fn bubble_sort_actually_sorts() {
        let s = bubble_sort(16, 7, 13);
        let mut m = Machine::new(CpuConfig::default());
        m.run(&s.program, &Victim::None).expect("run");
        let vals: Vec<u64> = (0..16).map(|i| m.read_word(BENIGN_BASE + i * 8)).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted);
    }

    #[test]
    fn quicksort_actually_sorts() {
        let s = quicksort(40, 7, 13);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        assert!(t.halted, "quicksort must terminate");
        let vals: Vec<u64> = (0..40).map(|i| m.read_word(BENIGN_BASE + i * 8)).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted);
    }

    #[test]
    fn string_search_finds_its_own_prefix() {
        let s = string_search(50, 7, 13);
        let mut m = Machine::new(CpuConfig::default());
        m.run(&s.program, &Victim::None).expect("run");
        assert!(
            m.read_word(BENIGN_BASE + 0x10000) >= 1,
            "the pattern is the text's own prefix, so at least one match"
        );
    }

    #[test]
    fn bfs_visits_every_reachable_node_once() {
        let nodes = 16;
        let (mul, add) = (7, 13);
        let s = graph_bfs(nodes, mul, add);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        assert!(t.halted, "BFS must terminate");
        // replay the traversal on the host
        let neighbors = |i: i64| {
            (
                ((i * mul + add) & (nodes - 1)) as usize,
                ((i + add) & (nodes - 1)) as usize,
            )
        };
        let mut visited = vec![false; nodes as usize];
        let mut queue = std::collections::VecDeque::from([0usize]);
        visited[0] = true;
        let mut count = 1u64;
        while let Some(v) = queue.pop_front() {
            let (a, b) = neighbors(v as i64);
            for n in [a, b] {
                if !visited[n] {
                    visited[n] = true;
                    count += 1;
                    queue.push_back(n);
                }
            }
        }
        assert_eq!(
            m.read_word(BENIGN_BASE + 0x30000),
            count,
            "visit count must match a host-side BFS"
        );
    }

    #[test]
    fn radix_sort_actually_sorts() {
        let n = 32;
        let s = radix_sort(n, 7, 13);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        assert!(t.halted);
        // two LSD passes over 16-bit keys end back in the source buffer
        let vals: Vec<u64> = (0..n as u64)
            .map(|i| m.read_word(BENIGN_BASE + i * 8))
            .collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted, "radix output must be sorted");
    }

    #[test]
    fn tokenizer_counts_tokens_like_a_host_dfa() {
        let (len, mul, add) = (80, 7, 13);
        let s = tokenizer(len, mul, add);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        assert!(t.halted);
        // host replay: same array init, same table, same scan
        let mut x: u64 = add as u64;
        let mut input = Vec::new();
        for _ in 0..len {
            x = (x * mul as u64 + add as u64) & 0xffff;
            input.push(x);
        }
        let table: Vec<u64> = (0..16)
            .map(|i| {
                let (cls, st) = (i % 4, i / 4);
                if cls == 0 {
                    0
                } else {
                    (st + cls + 1) & 3
                }
            })
            .collect();
        let mut state = 0u64;
        let mut tokens = 0u64;
        for byte in input {
            state = table[(state * 4 + (byte & 3)) as usize];
            if state == 1 {
                tokens += 1;
            }
        }
        assert_eq!(m.read_word(BENIGN_BASE + 0x30000), tokens);
    }

    #[test]
    fn lru_sim_counts_hits_sanely() {
        let s = lru_sim(60, 6, 7, 13);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        assert!(t.halted);
        let hits = m.read_word(BENIGN_BASE + 0x10000);
        assert!(hits <= 60, "hits bounded by requests: {hits}");
    }

    #[test]
    fn fib_dp_computes_fibonacci() {
        let s = fib_dp(10, 1);
        let mut m = Machine::new(CpuConfig::default());
        m.run(&s.program, &Victim::None).expect("run");
        // dp[0]=1, dp[1]=1 -> classic fibonacci
        let dp: Vec<u64> = (0..10).map(|i| m.read_word(BENIGN_BASE + i * 8)).collect();
        assert_eq!(&dp[..8], &[1, 1, 2, 3, 5, 8, 13, 21]);
    }
}
