//! SPEC2006-like streaming kernels: regular, high-volume memory traffic.

use sca_isa::rng::SmallRng;

use sca_isa::{AluOp, Cond, MemRef, ProgramBuilder, Reg};

use crate::layout::BENIGN_BASE;
use crate::sample::Sample;

const SRC: u64 = BENIGN_BASE + 0x100000;
const DST: u64 = BENIGN_BASE + 0x180000;

/// Pick and emit one streaming kernel.
pub fn generate(rng: &mut SmallRng) -> Sample {
    match rng.gen_range(0..4u32) {
        0 => stream_copy(rng.gen_range(128..512), rng.gen_range(1..4)),
        1 => strided_sum(rng.gen_range(128..512), rng.gen_range(1..9)),
        2 => stencil3(rng.gen_range(64..256)),
        _ => matmul(rng.gen_range(6..12)),
    }
}

/// Dense matrix multiply `C = A * B` over `dim x dim` word matrices —
/// the archetypal SPEC-style compute kernel with nested loops and a
/// quadratic working set.
fn matmul(dim: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("spec-matmul-{dim}"));
    super::leetcode::emit_array_init(&mut b, SRC, dim * dim, 7, 3);
    super::leetcode::emit_array_init(&mut b, SRC + 0x40000, dim * dim, 11, 5);
    let bmat = (SRC + 0x40000) as i64;
    let (i, j, k, acc, addr, va) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    let vb = Reg::R7;
    b.mov_imm(i, 0);
    let li = b.here();
    b.mov_imm(j, 0);
    let lj = b.here();
    b.mov_imm(acc, 0);
    b.mov_imm(k, 0);
    let lk = b.here();
    // va = A[i][k]
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Mul, addr, dim);
    b.alu(AluOp::Add, addr, k);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, SRC as i64);
    b.load(va, MemRef::base(addr));
    // vb = B[k][j]
    b.mov_reg(addr, k);
    b.alu_imm(AluOp::Mul, addr, dim);
    b.alu(AluOp::Add, addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, bmat);
    b.load(vb, MemRef::base(addr));
    b.alu(AluOp::Mul, va, vb);
    b.alu(AluOp::Add, acc, va);
    b.alu_imm(AluOp::And, acc, 0xffff_ffff);
    b.alu_imm(AluOp::Add, k, 1);
    b.cmp_imm(k, dim);
    b.br(Cond::Lt, lk);
    // C[i][j] = acc
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Mul, addr, dim);
    b.alu(AluOp::Add, addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, DST as i64);
    b.store(acc, MemRef::base(addr));
    b.alu_imm(AluOp::Add, j, 1);
    b.cmp_imm(j, dim);
    b.br(Cond::Lt, lj);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, dim);
    b.br(Cond::Lt, li);
    b.halt();
    Sample::benign(b.build())
}

fn stream_copy(n: i64, unroll: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("spec-copy-{n}-{unroll}"));
    super::leetcode::emit_array_init(&mut b, SRC, n, 7, 3);
    let (i, v, src, dst) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(i, 0);
    let top = b.here();
    for u in 0..unroll {
        b.mov_reg(src, i);
        b.alu_imm(AluOp::Add, src, u);
        b.alu_imm(AluOp::Shl, src, 3);
        b.mov_reg(dst, src);
        b.alu_imm(AluOp::Add, src, SRC as i64);
        b.alu_imm(AluOp::Add, dst, DST as i64);
        b.load(v, MemRef::base(src));
        b.store(v, MemRef::base(dst));
    }
    b.alu_imm(AluOp::Add, i, unroll);
    b.cmp_imm(i, n);
    b.br(Cond::Lt, top);
    b.halt();
    Sample::benign(b.build())
}

fn strided_sum(n: i64, stride: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("spec-stride-{n}-{stride}"));
    super::leetcode::emit_array_init(&mut b, SRC, n, 11, 5);
    let (i, v, addr, acc) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(acc, 0);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Mul, addr, stride);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, SRC as i64);
    b.load(v, MemRef::base(addr));
    b.alu(AluOp::Add, acc, v);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n / stride.max(1));
    b.br(Cond::Lt, top);
    b.store(acc, MemRef::abs(DST as i64));
    b.halt();
    Sample::benign(b.build())
}

fn stencil3(n: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("spec-stencil-{n}"));
    super::leetcode::emit_array_init(&mut b, SRC, n, 9, 2);
    let (i, addr, a, c, d, out) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    b.mov_imm(i, 1);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, SRC as i64);
    b.load(a, MemRef::base_disp(addr, -8));
    b.load(c, MemRef::base(addr));
    b.load(d, MemRef::base_disp(addr, 8));
    b.alu(AluOp::Add, a, c);
    b.alu(AluOp::Add, a, d);
    b.alu_imm(AluOp::Shr, a, 1);
    b.mov_reg(out, addr);
    b.alu_imm(AluOp::Add, out, (DST - SRC) as i64);
    b.store(a, MemRef::base(out));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n - 1);
    b.br(Cond::Lt, top);
    b.halt();
    Sample::benign(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cpu::{CpuConfig, Machine, Victim};

    #[test]
    fn all_spec_kernels_halt_with_traffic() {
        for seed in 0..9u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = generate(&mut rng);
            let mut m = Machine::new(CpuConfig::default());
            let t = m.run(&s.program, &Victim::None).expect("run");
            assert!(t.halted);
            assert!(t.totals.hpc_value() > 50, "{} too quiet", s.name());
        }
    }

    #[test]
    fn matmul_computes_a_known_product() {
        // With A[i][k] and B[k][j] generated by the same deterministic
        // in-program PRNG, check one C entry against a host-side replay.
        let dim = 4i64;
        let s = matmul(dim);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        assert!(t.halted);
        // replay the generator: x = (x*mul + add) & 0xffff
        let gen = |mul: u64, add: u64, n: usize| -> Vec<u64> {
            let mut x = add;
            (0..n)
                .map(|_| {
                    x = x.wrapping_mul(mul).wrapping_add(add) & 0xffff;
                    x
                })
                .collect()
        };
        let a = gen(7, 3, (dim * dim) as usize);
        let b = gen(11, 5, (dim * dim) as usize);
        let expect = |i: usize, j: usize| -> u64 {
            let mut acc = 0u64;
            for k in 0..dim as usize {
                acc = acc
                    .wrapping_add(a[i * dim as usize + k].wrapping_mul(b[k * dim as usize + j]))
                    & 0xffff_ffff;
            }
            acc
        };
        for (i, j) in [(0usize, 0usize), (1, 2), (3, 3)] {
            let got = m.read_word(DST + ((i as u64 * dim as u64) + j as u64) * 8);
            assert_eq!(got, expect(i, j), "C[{i}][{j}]");
        }
    }

    #[test]
    fn stream_copy_copies() {
        let s = stream_copy(32, 1);
        let mut m = Machine::new(CpuConfig::default());
        m.run(&s.program, &Victim::None).expect("run");
        for i in 0..32 {
            assert_eq!(m.read_word(SRC + i * 8), m.read_word(DST + i * 8));
        }
    }
}
