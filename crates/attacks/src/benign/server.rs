//! Server-application-like benign programs: request-dispatch loops over
//! hash tables and per-type counters (the SQLite/OpenSSH/thttpd row of
//! Table III).

use sca_isa::rng::SmallRng;

use sca_isa::{AluOp, Cond, MemRef, ProgramBuilder, Reg};

use crate::layout::BENIGN_BASE;
use crate::sample::Sample;

const REQUESTS: u64 = BENIGN_BASE + 0x200000;
const COUNTERS: u64 = BENIGN_BASE + 0x210000;
const BUCKETS: u64 = BENIGN_BASE + 0x220000;

/// Pick and emit one server kernel.
pub fn generate(rng: &mut SmallRng) -> Sample {
    match rng.gen_range(0..4u32) {
        0 => dispatch_loop(rng.gen_range(64..256), rng.gen_range(3..7)),
        1 => connection_cache(rng.gen_range(48..160), 1 << rng.gen_range(3..5u32)),
        2 => rate_limiter(
            rng.gen_range(64..200),
            1 << rng.gen_range(2..4u32),
            1 << rng.gen_range(1..3u32),
        ),
        _ => hash_table_server(rng.gen_range(64..256), rng.gen_range(16..64)),
    }
}

/// Read a ring of requests; branch on request type; bump a per-type
/// counter; write a response word.
fn dispatch_loop(n_requests: i64, n_types: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("server-dispatch-{n_requests}-{n_types}"));
    super::leetcode::emit_array_init(&mut b, REQUESTS, n_requests, 13, 7);
    let (i, req, ty, addr, cnt) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, REQUESTS as i64);
    b.load(req, MemRef::base(addr));
    // type = req % n_types  (via masking-free repeated subtraction bound)
    b.mov_reg(ty, req);
    b.alu_imm(AluOp::And, ty, 0xff);
    let mod_top = b.here();
    b.cmp_imm(ty, n_types);
    let mod_done = b.new_label();
    b.br(Cond::Lt, mod_done);
    b.alu_imm(AluOp::Sub, ty, n_types);
    b.jmp(mod_top);
    b.bind(mod_done);
    // dispatch chain: compare against each type id
    let done = b.new_label();
    for t in 0..n_types {
        b.cmp_imm(ty, t);
        let next = b.new_label();
        b.br(Cond::Ne, next);
        // handler: counters[t] += 1; response = req ^ t
        b.mov_imm(addr, t * 8 + COUNTERS as i64);
        b.load(cnt, MemRef::base(addr));
        b.alu_imm(AluOp::Add, cnt, 1);
        b.store(cnt, MemRef::base(addr));
        b.alu_imm(AluOp::Xor, req, t);
        b.jmp(done);
        b.bind(next);
    }
    b.bind(done);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n_requests);
    b.br(Cond::Lt, top);
    b.halt();
    Sample::benign(b.build())
}

/// Insert request keys into a fixed-size chained-free hash table
/// (open addressing with linear probing over a power-of-two bucket array).
fn hash_table_server(n_requests: i64, extra_buckets: i64) -> Sample {
    // Keep the table under 50% load so linear probing always terminates.
    let n_buckets = ((n_requests * 2 + extra_buckets) as u64).next_power_of_two() as i64;
    let mut b = ProgramBuilder::new(format!("server-hash-{n_requests}-{n_buckets}"));
    super::leetcode::emit_array_init(&mut b, REQUESTS, n_requests, 17, 11);
    let (i, key, slot, addr, v) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, REQUESTS as i64);
    b.load(key, MemRef::base(addr));
    b.alu_imm(AluOp::Or, key, 1); // keys are nonzero
                                  // slot = (key * 2654435761) & (n_buckets - 1)
    b.mov_reg(slot, key);
    b.alu_imm(AluOp::Mul, slot, 2654435761);
    b.alu_imm(AluOp::And, slot, n_buckets - 1);
    // linear probe for an empty or matching slot
    let probe = b.here();
    b.mov_reg(addr, slot);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BUCKETS as i64);
    b.load(v, MemRef::base(addr));
    b.cmp_imm(v, 0);
    let insert = b.new_label();
    b.br(Cond::Eq, insert);
    b.cmp(v, key);
    let found = b.new_label();
    b.br(Cond::Eq, found);
    b.alu_imm(AluOp::Add, slot, 1);
    b.alu_imm(AluOp::And, slot, n_buckets - 1);
    b.jmp(probe);
    b.bind(insert);
    b.store(key, MemRef::base(addr));
    b.bind(found);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, n_requests);
    b.br(Cond::Lt, top);
    b.halt();
    Sample::benign(b.build())
}

/// An LRU connection cache: each incoming connection id either refreshes
/// its slot's timestamp or evicts the least-recently-used slot — the
/// linear min-scan over a small table every server's connection pool does.
fn connection_cache(n_events: i64, slots: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("server-conncache-{n_events}-{slots}"));
    super::leetcode::emit_array_init(&mut b, REQUESTS, n_events, 19, 5);
    let ids = BUCKETS as i64; // slot -> connection id
    let stamps = COUNTERS as i64; // slot -> last-used tick
    let (t, ev, id, addr, v, best, bestv) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    );
    let j = Reg::R8;

    // empty table
    b.mov_imm(j, 0);
    b.mov_imm(v, 0);
    let clear_top = b.here();
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, ids);
    b.store(v, MemRef::base(addr));
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, stamps);
    b.store(v, MemRef::base(addr));
    b.alu_imm(AluOp::Add, j, 1);
    b.cmp_imm(j, slots);
    b.br(Cond::Lt, clear_top);

    b.mov_imm(t, 0);
    let top = b.here();
    // id = requests[t] | 1 (nonzero)
    b.mov_reg(addr, t);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, REQUESTS as i64);
    b.load(id, MemRef::base(addr));
    b.alu_imm(AluOp::Or, id, 1);
    // scan for the id, tracking the LRU slot as we go
    b.mov_imm(j, 0);
    b.mov_imm(best, 0);
    b.mov_imm(bestv, i64::MAX);
    let scan_top = b.here();
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, ids);
    b.load(ev, MemRef::base(addr));
    b.cmp(ev, id);
    let hit = b.new_label();
    b.br(Cond::Eq, hit);
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, stamps);
    b.load(v, MemRef::base(addr));
    b.cmp(v, bestv);
    let not_older = b.new_label();
    b.br(Cond::Ge, not_older);
    b.mov_reg(bestv, v);
    b.mov_reg(best, j);
    b.bind(not_older);
    b.alu_imm(AluOp::Add, j, 1);
    b.cmp_imm(j, slots);
    b.br(Cond::Lt, scan_top);
    // miss: evict the LRU slot
    b.mov_reg(j, best);
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, ids);
    b.store(id, MemRef::base(addr));
    b.bind(hit);
    // refresh the slot's timestamp
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, stamps);
    b.store(t, MemRef::base(addr));
    b.alu_imm(AluOp::Add, t, 1);
    b.cmp_imm(t, n_events);
    b.br(Cond::Lt, top);
    b.halt();
    Sample::benign(b.build())
}

/// A token-bucket rate limiter: per-client buckets hold one token,
/// drained on each request and restored every `period` ticks (a power of
/// two); rejected requests are counted — the counter-update pattern of an
/// API gateway.
fn rate_limiter(n_requests: i64, clients: i64, period: i64) -> Sample {
    assert!(period.count_ones() == 1, "period must be a power of two");
    let mut b = ProgramBuilder::new(format!("server-ratelimit-{n_requests}-{clients}-{period}"));
    super::leetcode::emit_array_init(&mut b, REQUESTS, n_requests, 23, 3);
    let buckets = COUNTERS as i64;
    let rejected = (BENIGN_BASE + 0x230000) as i64;
    let (t, c, addr, v, rej, j) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);

    // fill every bucket with one token
    b.mov_imm(j, 0);
    b.mov_imm(v, 1);
    let fill_top = b.here();
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, buckets);
    b.store(v, MemRef::base(addr));
    b.alu_imm(AluOp::Add, j, 1);
    b.cmp_imm(j, clients);
    b.br(Cond::Lt, fill_top);

    b.mov_imm(rej, 0);
    b.mov_imm(t, 0);
    let top = b.here();
    // periodic refill: every `period` requests, top every bucket back up
    b.mov_reg(v, t);
    b.alu_imm(AluOp::And, v, period - 1);
    b.cmp_imm(v, 0);
    let no_refill = b.new_label();
    b.br(Cond::Ne, no_refill);
    b.mov_imm(j, 0);
    b.mov_imm(v, 1);
    let refill_top = b.here();
    b.mov_reg(addr, j);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, buckets);
    b.store(v, MemRef::base(addr));
    b.alu_imm(AluOp::Add, j, 1);
    b.cmp_imm(j, clients);
    b.br(Cond::Lt, refill_top);
    b.bind(no_refill);
    // client = requests[t] & (clients - 1)
    b.mov_reg(addr, t);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, REQUESTS as i64);
    b.load(c, MemRef::base(addr));
    b.alu_imm(AluOp::And, c, clients - 1);
    b.mov_reg(addr, c);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, buckets);
    b.load(v, MemRef::base(addr));
    b.cmp_imm(v, 0);
    let reject = b.new_label();
    b.br(Cond::Eq, reject);
    b.alu_imm(AluOp::Sub, v, 1);
    b.store(v, MemRef::base(addr));
    let next = b.new_label();
    b.jmp(next);
    b.bind(reject);
    b.alu_imm(AluOp::Add, rej, 1);
    b.bind(next);
    b.alu_imm(AluOp::Add, t, 1);
    b.cmp_imm(t, n_requests);
    b.br(Cond::Lt, top);
    b.store(rej, MemRef::abs(rejected));
    b.halt();
    Sample::benign(b.build())
}

#[cfg(test)]
mod tests {
    #[test]
    fn connection_cache_tracks_recency() {
        let s = connection_cache(80, 8);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        assert!(t.halted);
        // every slot holds a nonzero connection id after 80 events over
        // 8 slots, and some timestamp is recent
        let ids: Vec<u64> = (0..8).map(|j| m.read_word(BUCKETS + j * 8)).collect();
        assert!(ids.iter().all(|&v| v != 0), "table filled: {ids:?}");
        let newest = (0..8).map(|j| m.read_word(COUNTERS + j * 8)).max().unwrap();
        assert!(newest >= 70, "a slot was touched near the end: {newest}");
    }

    #[test]
    fn rate_limiter_rejects_under_pressure() {
        // 4 clients sharing one token per 4-tick refill cannot serve
        // 100 requests without rejections
        let s = rate_limiter(100, 4, 4);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        assert!(t.halted);
        let rejected = m.read_word(BENIGN_BASE + 0x230000);
        assert!(rejected > 0, "pressure must cause rejections");
        assert!(rejected < 100, "but not everything is rejected");
    }

    use super::*;
    use sca_cpu::{CpuConfig, Machine, Victim};

    #[test]
    fn all_server_kernels_halt() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = generate(&mut rng);
            let mut m = Machine::new(CpuConfig::default());
            let t = m.run(&s.program, &Victim::None).expect("run");
            assert!(t.halted, "{} did not halt", s.name());
        }
    }

    #[test]
    fn dispatch_counts_every_request() {
        let s = dispatch_loop(50, 4);
        let mut m = Machine::new(CpuConfig::default());
        m.run(&s.program, &Victim::None).expect("run");
        let total: u64 = (0..4).map(|t| m.read_word(COUNTERS + t * 8)).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn hash_table_inserts_keys() {
        let s = hash_table_server(40, 32);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        assert!(t.halted);
        let occupied = (0..256u64)
            .filter(|b| m.read_word(BUCKETS + b * 8) != 0)
            .count();
        assert!(occupied > 5, "several buckets filled: {occupied}");
    }
}
