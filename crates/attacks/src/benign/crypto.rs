//! Crypto-kernel benign programs: table-lookup ciphers and
//! square-and-multiply exponentiation.
//!
//! These are the "hard" benign cases: like cache attacks they perform many
//! data-dependent table lookups, but they lack the flush/evict + timed
//! re-access structure that defines a CSCA.

use sca_isa::rng::SmallRng;

use sca_isa::{AluOp, Cond, MemRef, ProgramBuilder, Reg};

use crate::layout::BENIGN_BASE;
use crate::sample::Sample;

const SBOX: u64 = BENIGN_BASE + 0x40000;
const STATE_OUT: u64 = BENIGN_BASE + 0x50000;

/// Pick and emit one crypto kernel.
pub fn generate(rng: &mut SmallRng) -> Sample {
    match rng.gen_range(0..4u32) {
        0 => aes_like(
            rng.gen_range(6..14),
            rng.gen_range(8..32),
            rng.gen_range(1..0xffff),
        ),
        1 => rsa_like(rng.gen_range(16..48), rng.gen::<u32>() as i64),
        2 => stream_cipher(rng.gen_range(32..128), rng.gen_range(1..0xffff)),
        _ => crc_table(rng.gen_range(48..160), rng.gen_range(1..0xffff)),
    }
}

/// Table-driven CRC over a message buffer: one table lookup per byte,
/// structurally the same data-dependent-lookup shape as AES but with a
/// chained accumulator (the lookup index depends on the running CRC).
fn crc_table(len: i64, seed: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("crypto-crc-{len}-{seed}"));
    emit_sbox_init(&mut b, seed & 0xff);
    super::leetcode::emit_array_init(&mut b, BENIGN_BASE, len, 13, seed & 0xfff);
    let (i, v, crc, addr) = (Reg::R1, Reg::R2, Reg::R4, Reg::R5);
    b.mov_imm(crc, 0xffff);
    b.mov_imm(i, 0);
    let top = b.here();
    // v = message[i]
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(v, MemRef::base(addr));
    // index = (crc ^ v) & 0xff; crc = (crc >> 8) ^ table[index]
    b.alu(AluOp::Xor, v, crc);
    b.alu_imm(AluOp::And, v, 0xff);
    b.alu_imm(AluOp::Shl, v, 3);
    b.alu_imm(AluOp::Add, v, SBOX as i64);
    b.load(v, MemRef::base(v));
    b.alu_imm(AluOp::Shr, crc, 8);
    b.alu(AluOp::Xor, crc, v);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, len);
    b.br(Cond::Lt, top);
    b.store(crc, MemRef::abs(STATE_OUT as i64));
    b.halt();
    Sample::benign(b.build())
}

/// Emit an S-box initialization loop: `sbox[i] = (i * 167 + c) & 0xff`.
fn emit_sbox_init(b: &mut ProgramBuilder, c: i64) {
    let (i, v, addr) = (Reg::R1, Reg::R2, Reg::R3);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(v, i);
    b.alu_imm(AluOp::Mul, v, 167);
    b.alu_imm(AluOp::Add, v, c);
    b.alu_imm(AluOp::And, v, 0xff);
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, SBOX as i64);
    b.store(v, MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, 256);
    b.br(Cond::Lt, top);
}

/// AES-like: `rounds` of byte-wise S-box substitution and mixing over a
/// `blocks`-word state, with key addition.
fn aes_like(rounds: i64, blocks: i64, key: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("crypto-aes-{rounds}-{blocks}-{key}"));
    emit_sbox_init(&mut b, key & 0xff);
    let (r, blk, state, byte, addr, acc) = (Reg::R1, Reg::R2, Reg::R4, Reg::R5, Reg::R6, Reg::R7);
    // state starts as blk * 0x9e3779b9 ^ key
    b.mov_imm(r, 0);
    let round_top = b.here();
    b.mov_imm(blk, 0);
    let blk_top = b.here();
    b.mov_reg(state, blk);
    b.alu_imm(AluOp::Mul, state, 0x9e37_79b9);
    b.alu_imm(AluOp::Xor, state, key);
    b.alu(AluOp::Xor, state, r);
    // substitute 4 bytes through the sbox
    b.mov_imm(acc, 0);
    for shift in [0i64, 8, 16, 24] {
        b.mov_reg(byte, state);
        b.alu_imm(AluOp::Shr, byte, shift);
        b.alu_imm(AluOp::And, byte, 0xff);
        b.mov_reg(addr, byte);
        b.alu_imm(AluOp::Shl, addr, 3);
        b.alu_imm(AluOp::Add, addr, SBOX as i64);
        b.load(byte, MemRef::base(addr));
        b.alu_imm(AluOp::Shl, byte, shift);
        b.alu(AluOp::Or, acc, byte);
    }
    // mix and store
    b.alu_imm(AluOp::Mul, acc, 0x0101_0101);
    b.alu_imm(AluOp::And, acc, 0xffff_ffff);
    b.mov_reg(addr, blk);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, STATE_OUT as i64);
    b.store(acc, MemRef::base(addr));
    b.alu_imm(AluOp::Add, blk, 1);
    b.cmp_imm(blk, blocks);
    b.br(Cond::Lt, blk_top);
    b.alu_imm(AluOp::Add, r, 1);
    b.cmp_imm(r, rounds);
    b.br(Cond::Lt, round_top);
    b.halt();
    Sample::benign(b.build())
}

/// RSA-like square-and-multiply: scans exponent bits, squaring always and
/// multiplying on set bits — the classic secret-dependent-branch kernel.
fn rsa_like(bits: i64, exponent: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("crypto-rsa-{bits}-{exponent}"));
    let (i, e, bit, acc, base, addr) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    b.mov_imm(e, exponent);
    b.mov_imm(acc, 1);
    b.mov_imm(base, 0x0001_2345);
    b.mov_imm(i, 0);
    let top = b.here();
    // square
    b.alu(AluOp::Mul, acc, acc);
    b.alu_imm(AluOp::And, acc, 0x3fff_ffff);
    // test bit i
    b.mov_reg(bit, e);
    b.alu(AluOp::Shr, bit, i);
    b.alu_imm(AluOp::And, bit, 1);
    b.cmp_imm(bit, 0);
    let skip = b.new_label();
    b.br(Cond::Eq, skip);
    b.alu(AluOp::Mul, acc, base);
    b.alu_imm(AluOp::And, acc, 0x3fff_ffff);
    // table write of the running value (mimics Montgomery scratch)
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, (BENIGN_BASE + 0x60000) as i64);
    b.store(acc, MemRef::base(addr));
    b.bind(skip);
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, bits);
    b.br(Cond::Lt, top);
    b.store(acc, MemRef::abs(STATE_OUT as i64));
    b.halt();
    Sample::benign(b.build())
}

/// A keystream generator XORing table bytes over a message buffer.
fn stream_cipher(len: i64, key: i64) -> Sample {
    let mut b = ProgramBuilder::new(format!("crypto-stream-{len}-{key}"));
    emit_sbox_init(&mut b, key & 0xff);
    super::leetcode::emit_array_init(&mut b, BENIGN_BASE, len, 5, key & 0xfff);
    let (i, v, k, addr) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(i, 0);
    let top = b.here();
    b.mov_reg(addr, i);
    b.alu_imm(AluOp::Shl, addr, 3);
    b.alu_imm(AluOp::Add, addr, BENIGN_BASE as i64);
    b.load(v, MemRef::base(addr));
    // k = sbox[(v + i) & 0xff]
    b.mov_reg(k, v);
    b.alu(AluOp::Add, k, i);
    b.alu_imm(AluOp::And, k, 0xff);
    b.alu_imm(AluOp::Shl, k, 3);
    b.alu_imm(AluOp::Add, k, SBOX as i64);
    b.load(k, MemRef::base(k));
    b.alu(AluOp::Xor, v, k);
    b.store(v, MemRef::base(addr));
    b.alu_imm(AluOp::Add, i, 1);
    b.cmp_imm(i, len);
    b.br(Cond::Lt, top);
    b.halt();
    Sample::benign(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cpu::{CpuConfig, Machine, Victim};

    #[test]
    fn all_crypto_kernels_halt() {
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = generate(&mut rng);
            let mut m = Machine::new(CpuConfig::default());
            let t = m.run(&s.program, &Victim::None).expect("run");
            assert!(t.halted, "{} did not halt", s.name());
        }
    }

    #[test]
    fn crc_depends_on_the_message() {
        let run = |seed: i64| {
            let s = crc_table(64, seed);
            let mut m = Machine::new(CpuConfig::default());
            m.run(&s.program, &Victim::None).expect("run");
            m.read_word(STATE_OUT)
        };
        assert_ne!(run(11), run(12), "different messages, different CRCs");
        assert_eq!(run(11), run(11), "deterministic");
    }

    #[test]
    fn rsa_like_depends_on_exponent() {
        let a = rsa_like(20, 0b1010_1010);
        let b = rsa_like(20, 0b1111_0000);
        let run = |s: &Sample| {
            let mut m = Machine::new(CpuConfig::default());
            m.run(&s.program, &Victim::None).expect("run");
            m.read_word(STATE_OUT)
        };
        assert_ne!(run(&a), run(&b));
    }

    #[test]
    fn aes_like_is_memory_heavy() {
        let s = aes_like(8, 16, 99);
        let mut m = Machine::new(CpuConfig::default());
        let t = m.run(&s.program, &Victim::None).expect("run");
        let loads = s
            .program
            .insts()
            .iter()
            .filter(|i| matches!(i, sca_isa::Inst::Load { .. }))
            .count();
        assert!(loads >= 4, "table lookups present");
        assert!(t.totals.hpc_value() > 100, "plenty of cache events");
    }
}
