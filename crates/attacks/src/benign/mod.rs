//! Benign program generators (Table III).
//!
//! The paper's 400 benign programs mix SPEC2006 cases, LeetCode-style
//! algorithm solutions, mutated crypto-system kernels, and real server
//! applications — programs with widely varying memory-access intensity.
//! Each category here is a family of seeded kernel generators in the
//! micro-ISA with the same character:
//!
//! * [`Kind::Spec`] — streaming/stencil kernels (high, regular memory
//!   traffic);
//! * [`Kind::Leetcode`] — small algorithmic kernels (sorts, searches, DP);
//! * [`Kind::Crypto`] — table-lookup ciphers and square-and-multiply
//!   exponentiation (secret-dependent *data* access, but no probe/flush
//!   timing structure);
//! * [`Kind::Server`] — request-dispatch loops over hash tables and
//!   counters.

mod crypto;
mod leetcode;
mod server;
mod spec;

use sca_isa::rng::SmallRng;

use crate::sample::Sample;

/// The four benign categories of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kind {
    /// SPEC2006-like streaming kernels.
    Spec,
    /// LeetCode-style algorithm solutions.
    Leetcode,
    /// Crypto-system kernels (AES-like, RSA-like).
    Crypto,
    /// Server-application request loops.
    Server,
}

impl Kind {
    /// All categories in Table III order.
    pub const ALL: [Kind; 4] = [Kind::Spec, Kind::Leetcode, Kind::Crypto, Kind::Server];

    /// The Table-III sample count for this category (out of 400).
    pub fn table_iii_count(self) -> usize {
        match self {
            Kind::Spec => 12,
            Kind::Leetcode => 230,
            Kind::Crypto => 150,
            Kind::Server => 8,
        }
    }
}

/// Generate one benign sample of `kind` from `seed`. Distinct seeds vary
/// the kernel selected within the category and its sizes/constants.
pub fn generate(kind: Kind, seed: u64) -> Sample {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbe_0196);
    match kind {
        Kind::Spec => spec::generate(&mut rng),
        Kind::Leetcode => leetcode::generate(&mut rng),
        Kind::Crypto => crypto::generate(&mut rng),
        Kind::Server => server::generate(&mut rng),
    }
}

/// Generate `total` benign samples with the Table-III category mix,
/// deterministically from `seed`.
pub fn generate_mix(total: usize, seed: u64) -> Vec<Sample> {
    let weights: Vec<(Kind, usize)> = Kind::ALL
        .iter()
        .map(|&k| (k, k.table_iii_count()))
        .collect();
    let table_total: usize = weights.iter().map(|(_, c)| c).sum();
    let mut out = Vec::with_capacity(total);
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..total {
        // Proportional allocation matching Table III (exact at total=400).
        let slot = (i * table_total) / total;
        let mut acc = 0;
        let mut kind = Kind::Leetcode;
        for &(k, c) in &weights {
            acc += c;
            if slot < acc {
                kind = k;
                break;
            }
        }
        out.push(generate(kind, rng.gen()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_cpu::{CpuConfig, Machine, Victim};

    #[test]
    fn table_iii_counts_sum_to_400() {
        let total: usize = Kind::ALL.iter().map(|k| k.table_iii_count()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn every_kind_generates_runnable_untagged_programs() {
        for kind in Kind::ALL {
            for seed in 0..3 {
                let s = generate(kind, seed);
                assert!(
                    !s.program.has_attack_tags(),
                    "benign {} must carry no attack tags",
                    s.name()
                );
                let mut m = Machine::new(CpuConfig::default());
                let t = m.run(&s.program, &Victim::None).expect("run");
                assert!(t.halted, "{:?} seed {} must halt", kind, seed);
                assert!(t.steps > 50, "{:?} seed {} too trivial", kind, seed);
            }
        }
    }

    #[test]
    fn seeds_vary_the_program() {
        let a = generate(Kind::Leetcode, 1);
        let b = generate(Kind::Leetcode, 2);
        assert_ne!(a.program.insts(), b.program.insts());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Kind::Crypto, 7);
        let b = generate(Kind::Crypto, 7);
        assert_eq!(a.program.insts(), b.program.insts());
    }

    #[test]
    fn mix_has_all_categories_at_scale_400() {
        let samples = generate_mix(400, 42);
        assert_eq!(samples.len(), 400);
        let spec = samples
            .iter()
            .filter(|s| s.name().starts_with("spec"))
            .count();
        let leet = samples
            .iter()
            .filter(|s| s.name().starts_with("leet"))
            .count();
        let crypto = samples
            .iter()
            .filter(|s| s.name().starts_with("crypto"))
            .count();
        let server = samples
            .iter()
            .filter(|s| s.name().starts_with("server"))
            .count();
        assert_eq!(spec, 12);
        assert_eq!(leet, 230);
        assert_eq!(crypto, 150);
        assert_eq!(server, 8);
    }
}
