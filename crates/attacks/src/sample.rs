//! Labeled samples: a program, the victim it runs against, and ground truth.

use std::fmt;

use sca_cpu::Victim;
use sca_isa::Program;

/// The four attack types of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackFamily {
    /// Flush+Reload family (FR-F): Flush+Reload, Flush+Flush, Evict+Reload.
    FlushReload,
    /// Prime+Probe family (PP-F).
    PrimeProbe,
    /// Spectre-like variants of Flush+Reload (S-FR).
    SpectreFlushReload,
    /// Spectre-like variants of Prime+Probe (S-PP).
    SpectrePrimeProbe,
}

impl AttackFamily {
    /// All families in Table II order.
    pub const ALL: [AttackFamily; 4] = [
        AttackFamily::FlushReload,
        AttackFamily::PrimeProbe,
        AttackFamily::SpectreFlushReload,
        AttackFamily::SpectrePrimeProbe,
    ];

    /// The family with the given paper abbreviation, if any.
    ///
    /// ```
    /// use sca_attacks::AttackFamily;
    /// assert_eq!(AttackFamily::from_abbrev("S-FR"), Some(AttackFamily::SpectreFlushReload));
    /// assert_eq!(AttackFamily::from_abbrev("nope"), None);
    /// ```
    pub fn from_abbrev(s: &str) -> Option<AttackFamily> {
        AttackFamily::ALL.into_iter().find(|f| f.abbrev() == s)
    }

    /// The paper's abbreviation (FR-F, PP-F, S-FR, S-PP).
    pub fn abbrev(self) -> &'static str {
        match self {
            AttackFamily::FlushReload => "FR-F",
            AttackFamily::PrimeProbe => "PP-F",
            AttackFamily::SpectreFlushReload => "S-FR",
            AttackFamily::SpectrePrimeProbe => "S-PP",
        }
    }
}

impl fmt::Display for AttackFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abbrev())
    }
}

/// Ground-truth label of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// An attack of the given family.
    Attack(AttackFamily),
    /// A benign program.
    Benign,
}

impl Label {
    /// Whether this label denotes an attack.
    pub fn is_attack(self) -> bool {
        matches!(self, Label::Attack(_))
    }

    /// The attack family, if any.
    pub fn family(self) -> Option<AttackFamily> {
        match self {
            Label::Attack(f) => Some(f),
            Label::Benign => None,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Attack(fam) => write!(f, "{fam}"),
            Label::Benign => write!(f, "Benign"),
        }
    }
}

/// One dataset entry: the program under analysis, the co-located victim it
/// is executed with, and its ground-truth label.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The program under analysis.
    pub program: Program,
    /// The victim model the program runs against.
    pub victim: Victim,
    /// Ground truth.
    pub label: Label,
}

impl Sample {
    /// Convenience constructor.
    pub fn new(program: Program, victim: Victim, label: Label) -> Sample {
        Sample {
            program,
            victim,
            label,
        }
    }

    /// A benign sample (no victim).
    pub fn benign(program: Program) -> Sample {
        Sample {
            program,
            victim: Victim::None,
            label: Label::Benign,
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        self.program.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sca_isa::ProgramBuilder;

    #[test]
    fn label_predicates() {
        assert!(Label::Attack(AttackFamily::FlushReload).is_attack());
        assert!(!Label::Benign.is_attack());
        assert_eq!(
            Label::Attack(AttackFamily::PrimeProbe).family(),
            Some(AttackFamily::PrimeProbe)
        );
        assert_eq!(Label::Benign.family(), None);
    }

    #[test]
    fn abbrevs_match_table_two() {
        let abbrevs: Vec<_> = AttackFamily::ALL.iter().map(|f| f.abbrev()).collect();
        assert_eq!(abbrevs, vec!["FR-F", "PP-F", "S-FR", "S-PP"]);
    }

    #[test]
    fn benign_sample_has_no_victim() {
        let mut b = ProgramBuilder::new("b");
        b.halt();
        let s = Sample::benign(b.build());
        assert!(matches!(s.victim, Victim::None));
        assert_eq!(s.label, Label::Benign);
        assert_eq!(s.name(), "b");
    }
}
