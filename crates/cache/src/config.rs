//! Cache and hierarchy configuration.

use std::fmt;

/// Replacement policy for a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (exact, per-set recency stamps).
    #[default]
    Lru,
    /// First-in-first-out (insertion order, untouched by hits).
    Fifo,
    /// Tree pseudo-LRU (binary decision tree per set, as in real L1s).
    TreePlru,
    /// Uniform-random victim selection (deterministic xorshift stream).
    Random,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementPolicy::Lru => write!(f, "LRU"),
            ReplacementPolicy::Fifo => write!(f, "FIFO"),
            ReplacementPolicy::TreePlru => write!(f, "Tree-PLRU"),
            ReplacementPolicy::Random => write!(f, "Random"),
        }
    }
}

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (lines per set); must be nonzero.
    pub ways: usize,
    /// Line size in bytes; must be a power of two.
    pub line_size: u64,
    /// Victim-selection policy.
    pub policy: ReplacementPolicy,
    /// Seed for the `Random` policy's deterministic stream.
    pub seed: u64,
    /// Way-partitioning defense (Intel CAT-style): reserve the first N
    /// ways of every set for [`Owner::Victim`](crate::Owner::Victim)
    /// fills; all other owners allocate in the remaining ways. `0`
    /// disables partitioning. Hits are unaffected (CAT restricts
    /// *allocation*, not lookup).
    pub reserved_victim_ways: usize,
}

impl CacheConfig {
    /// Create a configuration with the default (LRU) policy.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_size` is not a power of two, or `ways == 0`.
    pub fn new(sets: usize, ways: usize, line_size: u64) -> CacheConfig {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        CacheConfig {
            sets,
            ways,
            line_size,
            policy: ReplacementPolicy::Lru,
            seed: 0x5ca6_0a2d,
            reserved_victim_ways: 0,
        }
    }

    /// Builder-style way-partitioning override (see
    /// [`reserved_victim_ways`](CacheConfig::reserved_victim_ways)).
    ///
    /// # Panics
    ///
    /// Panics if `n >= ways` (every owner needs at least one way).
    pub fn with_reserved_victim_ways(mut self, n: usize) -> CacheConfig {
        assert!(n < self.ways, "partition must leave ways for other owners");
        self.reserved_victim_ways = n;
        self
    }

    /// Builder-style policy override.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> CacheConfig {
        self.policy = policy;
        self
    }

    /// Builder-style seed override (only affects `Random`).
    pub fn with_seed(mut self, seed: u64) -> CacheConfig {
        self.seed = seed;
        self
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_size
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// The set index of byte address `addr`.
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr / self.line_size) as usize) & (self.sets - 1)
    }

    /// The line-aligned address containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_size - 1)
    }
}

/// Configuration for the full two-level hierarchy used by the simulated CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// Last-level (shared) cache.
    pub llc: CacheConfig,
    /// Whether the LLC is inclusive of the L1s (evicting an LLC line
    /// back-invalidates the L1 copies). Intel client parts — like the
    /// paper's i7-6700 — are inclusive; server parts since Skylake-SP are
    /// not, which is a known hardening against LLC Prime+Probe.
    pub inclusive: bool,
}

impl HierarchyConfig {
    /// A hierarchy loosely shaped like the paper's i7-6700 test machine,
    /// scaled down so experiments stay fast: 32 KiB split L1 (64×8×64B)
    /// and a 1 MiB 16-way inclusive LLC.
    pub fn skylake_like() -> HierarchyConfig {
        HierarchyConfig {
            l1d: CacheConfig::new(64, 8, 64),
            l1i: CacheConfig::new(64, 8, 64),
            llc: CacheConfig::new(1024, 16, 64),
            inclusive: true,
        }
    }

    /// A tiny hierarchy for fast unit tests (4 KiB L1, 32 KiB LLC).
    pub fn tiny() -> HierarchyConfig {
        HierarchyConfig {
            l1d: CacheConfig::new(16, 4, 64),
            l1i: CacheConfig::new(16, 4, 64),
            llc: CacheConfig::new(64, 8, 64),
            inclusive: true,
        }
    }

    /// Builder-style switch to a non-inclusive LLC.
    pub fn non_inclusive(mut self) -> HierarchyConfig {
        self.inclusive = false;
        self
    }

    /// Builder-style replacement-policy override applied to every level.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> HierarchyConfig {
        self.l1d.policy = policy;
        self.l1i.policy = policy;
        self.llc.policy = policy;
        self
    }
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig::skylake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_and_lines() {
        let c = CacheConfig::new(64, 8, 64);
        assert_eq!(c.capacity(), 32 * 1024);
        assert_eq!(c.lines(), 512);
    }

    #[test]
    fn set_index_wraps() {
        let c = CacheConfig::new(16, 4, 64);
        assert_eq!(c.set_index(0), 0);
        assert_eq!(c.set_index(64), 1);
        assert_eq!(c.set_index(16 * 64), 0);
        assert_eq!(c.set_index(17 * 64 + 5), 1);
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = CacheConfig::new(16, 4, 64);
        assert_eq!(c.line_addr(0x1234), 0x1200);
        assert_eq!(c.line_addr(0x1240), 0x1240);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheConfig::new(3, 4, 64);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_ways_rejected() {
        let _ = CacheConfig::new(4, 0, 64);
    }

    #[test]
    fn default_hierarchy_is_skylake_like() {
        let h = HierarchyConfig::default();
        assert_eq!(h.l1d.capacity(), 32 * 1024);
        assert_eq!(h.llc.capacity(), 1024 * 1024);
    }
}
