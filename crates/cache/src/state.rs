//! Cache states and cache state transitions (Definitions 3 and 4).

use std::fmt;

/// A cache state `(AO, IO)` — Definition 3 of the paper.
///
/// `AO` is the fraction of cache lines occupied by the attack program and
/// `IO` the fraction occupied by everyone else; `AO + IO <= 1` always holds
/// (the remainder being invalid lines).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheState {
    /// Attacker occupancy rate in `[0, 1]`.
    pub ao: f64,
    /// Non-attacker ("other") occupancy rate in `[0, 1]`.
    pub io: f64,
}

impl CacheState {
    /// Construct a cache state.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]` or the rates sum to more
    /// than 1 (beyond floating-point tolerance).
    pub fn new(ao: f64, io: f64) -> CacheState {
        assert!((0.0..=1.0).contains(&ao), "AO out of range: {ao}");
        assert!((0.0..=1.0).contains(&io), "IO out of range: {io}");
        assert!(ao + io <= 1.0 + 1e-9, "AO + IO > 1: {ao} + {io}");
        CacheState { ao, io }
    }

    /// The initial CST-measurement state: cache full of other data,
    /// attack not mounted (`IO = 1, AO = 0`).
    pub fn full_other() -> CacheState {
        CacheState { ao: 0.0, io: 1.0 }
    }

    /// The magnitude of change from `self` to `after`:
    /// `P = (|AO - AO'| + |IO - IO'|) / 2` (Section III-B.1).
    pub fn change_to(&self, after: &CacheState) -> f64 {
        ((self.ao - after.ao).abs() + (self.io - after.io).abs()) / 2.0
    }
}

impl fmt::Display for CacheState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(AO={:.3}, IO={:.3})", self.ao, self.io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_other_is_valid() {
        let s = CacheState::full_other();
        assert_eq!(s.ao, 0.0);
        assert_eq!(s.io, 1.0);
    }

    #[test]
    fn change_is_symmetric_and_zero_on_identity() {
        let a = CacheState::new(0.2, 0.7);
        let b = CacheState::new(0.5, 0.3);
        assert!((a.change_to(&b) - b.change_to(&a)).abs() < 1e-12);
        assert_eq!(a.change_to(&a), 0.0);
    }

    #[test]
    fn change_magnitude_example() {
        // full-other -> attacker displaced 40% of lines
        let before = CacheState::full_other();
        let after = CacheState::new(0.4, 0.6);
        assert!((before.change_to(&after) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_negative_rate() {
        let _ = CacheState::new(-0.1, 0.5);
    }

    #[test]
    #[should_panic(expected = "AO + IO > 1")]
    fn rejects_oversum() {
        let _ = CacheState::new(0.7, 0.7);
    }
}
