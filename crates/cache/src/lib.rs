//! # sca-cache — set-associative cache model
//!
//! The cache simulator plays two roles in the SCAGuard pipeline:
//!
//! 1. **Runtime substrate.** The simulated CPU (`sca-cpu`) runs every
//!    target program against a two-level hierarchy (split L1 + inclusive
//!    LLC) and derives the Table-I HPC events from the hit/miss outcomes
//!    this crate reports.
//! 2. **CST measurement.** Section III-A.3 of the paper replays each
//!    attack-relevant basic block's memory accesses in a cache simulator
//!    initialized to `IO = 1, AO = 0` and reads the resulting cache state
//!    transition off the occupancy counters. [`Cache::prefill`] and
//!    [`Cache::state`] implement exactly that protocol.
//!
//! Lines carry an [`Owner`] so the *attacker occupancy* `AO` and *other
//! occupancy* `IO` of Definition 3 can be measured directly:
//!
//! ```
//! use sca_cache::{Cache, CacheConfig, Owner};
//!
//! let mut c = Cache::new(CacheConfig::new(16, 4, 64));
//! c.prefill(Owner::Other);
//! assert_eq!(c.state().io, 1.0);
//! c.access(0x1000, Owner::Attacker, false);
//! let s = c.state();
//! assert!(s.ao > 0.0 && s.ao + s.io <= 1.0);
//! ```

mod cache;
mod config;
mod hierarchy;
mod state;

pub use cache::{AccessOutcome, Cache, CacheStats, Owner};
pub use config::{CacheConfig, HierarchyConfig, ReplacementPolicy};
pub use hierarchy::{DataOutcome, FetchOutcome, Hierarchy};
pub use state::CacheState;
