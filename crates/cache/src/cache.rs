//! A single set-associative cache level with owner-tagged lines.

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::state::CacheState;

/// Who caused a cache line to be filled.
///
/// Definition 3 of the paper splits occupancy into `AO` (lines occupied by
/// the attack program) and `IO` (every other occupied line); tagging each
/// fill with its originating party lets both be read off directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The program under analysis (the would-be attacker).
    Attacker,
    /// The co-located victim process.
    Victim,
    /// Pre-existing/other system data.
    Other,
}

/// Result of one cache access at a single level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Line-aligned address and owner of the line evicted by the fill, if
    /// the access missed and displaced a valid line.
    pub evicted: Option<(u64, Owner)>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    owner: Owner,
    valid: bool,
    /// LRU recency stamp or FIFO insertion stamp, depending on policy.
    stamp: u64,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    owner: Owner::Other,
    valid: false,
    stamp: 0,
};

/// Demand-access and flush counters for one [`Cache`].
///
/// `hits + misses` equals the number of [`Cache::access`] calls since the
/// cache was created (or [`Cache::reset_stats`] was called) — inclusive
/// fills via [`Cache::fill`] are not counted, matching their
/// non-demand-access semantics. `flushes` counts lines actually removed by
/// [`Cache::invalidate`] or [`Cache::displace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Demand accesses that found their line resident.
    pub hits: u64,
    /// Demand accesses that filled on a miss.
    pub misses: u64,
    /// Lines removed by flush operations.
    pub flushes: u64,
}

impl CacheStats {
    /// Add `other`'s counts into `self` (aggregating across caches).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.flushes += other.flushes;
    }

    /// Total demand accesses, `hits + misses`.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// One set-associative cache level.
///
/// Addresses are byte addresses; the cache operates on line granularity.
/// All operations are deterministic, including the `Random` replacement
/// policy (which draws from a seeded xorshift stream).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    /// Tree-PLRU state bits, one word per set.
    plru: Vec<u64>,
    tick: u64,
    rng: u64,
    stats: CacheStats,
}

impl Cache {
    /// Create an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Cache {
        Cache {
            cfg,
            lines: vec![INVALID_LINE; cfg.lines()],
            plru: vec![0; cfg.sets],
            tick: 0,
            rng: cfg.seed | 1,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit/miss/flush counters accumulated since creation or the last
    /// [`reset_stats`](Cache::reset_stats).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the hit/miss/flush counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.cfg.ways;
        base..base + self.cfg.ways
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_size / self.cfg.sets as u64
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Whether the line containing `addr` is present (no state update).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.cfg.set_index(addr);
        let tag = self.tag_of(addr);
        self.lines[self.set_range(set)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// The owner of the resident line containing `addr`, if present.
    pub fn owner_of(&self, addr: u64) -> Option<Owner> {
        let set = self.cfg.set_index(addr);
        let tag = self.tag_of(addr);
        self.lines[self.set_range(set)]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.owner)
    }

    /// Access `addr` on behalf of `owner`, filling on miss.
    ///
    /// `is_write` only matters for bookkeeping symmetry with real caches
    /// (write-allocate, no write-back modelling is needed for timing).
    pub fn access(&mut self, addr: u64, owner: Owner, is_write: bool) -> AccessOutcome {
        let out = self.access_uncounted(addr, owner, is_write);
        if out.hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        out
    }

    fn access_uncounted(&mut self, addr: u64, owner: Owner, is_write: bool) -> AccessOutcome {
        let _ = is_write; // write-allocate: identical fill path
        let set = self.cfg.set_index(addr);
        let tag = self.tag_of(addr);
        let range = self.set_range(set);

        // Hit path.
        if let Some(off) = self.lines[range.clone()]
            .iter()
            .position(|l| l.valid && l.tag == tag)
        {
            let idx = range.start + off;
            if self.cfg.policy == ReplacementPolicy::Lru {
                self.lines[idx].stamp = self.next_tick();
            }
            if self.cfg.policy == ReplacementPolicy::TreePlru {
                self.plru_touch(set, off);
            }
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }

        // Miss: pick a victim way and fill (honoring any way partition).
        let way = self.victim_way(set, owner);
        let idx = range.start + way;
        let old = self.lines[idx];
        let evicted = old
            .valid
            .then(|| (self.line_addr_of(set, old.tag), old.owner));
        let stamp = self.next_tick();
        self.lines[idx] = Line {
            tag,
            owner,
            valid: true,
            stamp,
        };
        if self.cfg.policy == ReplacementPolicy::TreePlru {
            self.plru_touch(set, way);
        }
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Fill `addr` for `owner` without counting as a demand access
    /// (used when propagating inclusive fills between levels).
    pub fn fill(&mut self, addr: u64, owner: Owner) -> Option<(u64, Owner)> {
        let out = self.access_uncounted(addr, owner, false);
        out.evicted
    }

    /// Invalidate the line containing `addr`. Returns `true` if it was
    /// present (this presence bit drives the Flush+Flush timing channel).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let set = self.cfg.set_index(addr);
        let tag = self.tag_of(addr);
        let range = self.set_range(set);
        for idx in range {
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                self.lines[idx] = INVALID_LINE;
                self.stats.flushes += 1;
                return true;
            }
        }
        false
    }

    /// Invalidate the line containing `addr` if present; otherwise
    /// invalidate the replacement-victim line of `addr`'s set (if any line
    /// is valid there). Returns `true` if a line was invalidated.
    ///
    /// This is the `clflush` semantics for CST replay (Section III-A.3 of
    /// the paper): the replay cache is prefilled to stand for "full of
    /// arbitrary data", so flushing an address must displace whatever data
    /// currently occupies its cache slot, decreasing `IO`.
    pub fn displace(&mut self, addr: u64) -> bool {
        if self.invalidate(addr) {
            return true;
        }
        let set = self.cfg.set_index(addr);
        if self.lines[self.set_range(set)].iter().all(|l| !l.valid) {
            return false;
        }
        let way = self.victim_way(set, Owner::Other);
        let idx = set * self.cfg.ways + way;
        if !self.lines[idx].valid {
            return false;
        }
        self.lines[idx] = INVALID_LINE;
        self.stats.flushes += 1;
        true
    }

    /// Invalidate every line, resetting the cache to empty.
    pub fn clear(&mut self) {
        self.lines.fill(INVALID_LINE);
        self.plru.fill(0);
    }

    /// Fill *every* line with distinct synthetic addresses owned by `owner`.
    ///
    /// This realizes the paper's CST-measurement scenario: "initially, the
    /// cache is full of data and the attack is not mounted, that is `IO = 1`
    /// and `AO = 0`" (with `owner = Owner::Other`).
    pub fn prefill(&mut self, owner: Owner) {
        // Use tags beyond any plausible program address so prefill lines
        // never alias real data.
        let base_tag = 1u64 << 40;
        for set in 0..self.cfg.sets {
            for way in 0..self.cfg.ways {
                let idx = set * self.cfg.ways + way;
                let stamp = self.next_tick();
                self.lines[idx] = Line {
                    tag: base_tag + way as u64,
                    owner,
                    valid: true,
                    stamp,
                };
            }
        }
    }

    /// Number of valid lines owned by `owner`.
    pub fn lines_owned_by(&self, owner: Owner) -> usize {
        self.lines
            .iter()
            .filter(|l| l.valid && l.owner == owner)
            .count()
    }

    /// Number of valid lines regardless of owner.
    pub fn lines_valid(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// The cache state `(AO, IO)` of Definition 3: attacker occupancy and
    /// non-attacker occupancy as fractions of total lines.
    pub fn state(&self) -> CacheState {
        let total = self.cfg.lines() as f64;
        let ao = self.lines_owned_by(Owner::Attacker) as f64 / total;
        let io = (self.lines_valid() - self.lines_owned_by(Owner::Attacker)) as f64 / total;
        CacheState::new(ao, io)
    }

    /// Distinct set indices currently holding at least one line owned by
    /// `owner` (used by the SCADET baseline's set-access rules).
    pub fn sets_owned_by(&self, owner: Owner) -> Vec<usize> {
        (0..self.cfg.sets)
            .filter(|&s| {
                self.lines[self.set_range(s)]
                    .iter()
                    .any(|l| l.valid && l.owner == owner)
            })
            .collect()
    }

    fn line_addr_of(&self, set: usize, tag: u64) -> u64 {
        (tag * self.cfg.sets as u64 + set as u64) * self.cfg.line_size
    }

    /// The way offsets `owner` may allocate into under the partition.
    fn allowed_ways(&self, owner: Owner) -> std::ops::Range<usize> {
        let r = self.cfg.reserved_victim_ways;
        if r == 0 {
            0..self.cfg.ways
        } else if owner == Owner::Victim {
            0..r
        } else {
            r..self.cfg.ways
        }
    }

    fn victim_way(&mut self, set: usize, owner: Owner) -> usize {
        let base = set * self.cfg.ways;
        let allowed = self.allowed_ways(owner);
        // Always prefer an invalid way within the allowed range.
        for off in allowed.clone() {
            if !self.lines[base + off].valid {
                return off;
            }
        }
        if self.cfg.reserved_victim_ways != 0 {
            // Partitioned: replacement within the allowed range is
            // oldest-stamp (LRU/FIFO semantics; the tree-PLRU and random
            // policies degrade to the same, documented behavior).
            let mut best = allowed.start;
            let mut best_stamp = u64::MAX;
            for off in allowed {
                if self.lines[base + off].stamp < best_stamp {
                    best_stamp = self.lines[base + off].stamp;
                    best = off;
                }
            }
            return best;
        }
        let range = self.set_range(set);
        match self.cfg.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                // LRU: oldest recency stamp. FIFO: oldest insertion stamp
                // (stamps are only refreshed on hit under LRU).
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                for (off, l) in self.lines[range].iter().enumerate() {
                    if l.stamp < best_stamp {
                        best_stamp = l.stamp;
                        best = off;
                    }
                }
                best
            }
            ReplacementPolicy::TreePlru => self.plru_victim(set),
            ReplacementPolicy::Random => (self.xorshift() as usize) % self.cfg.ways,
        }
    }

    // --- tree-PLRU ------------------------------------------------------
    //
    // Standard binary-tree PLRU over the next power of two >= ways; bits
    // live in one u64 per set (ways <= 64 supported, ample here).

    fn plru_touch(&mut self, set: usize, way: usize) {
        let ways = self.cfg.ways.next_power_of_two();
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            // Point the bit *away* from the touched way.
            if go_right {
                self.plru[set] &= !(1 << node);
                lo = mid;
                node = node * 2 + 1;
            } else {
                self.plru[set] |= 1 << node;
                hi = mid;
                node *= 2;
            }
        }
    }

    fn plru_victim(&mut self, set: usize) -> usize {
        let ways = self.cfg.ways.next_power_of_two();
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let bit = (self.plru[set] >> node) & 1;
            if bit == 1 {
                lo = mid;
                node = node * 2 + 1;
            } else {
                hi = mid;
                node *= 2;
            }
        }
        lo.min(self.cfg.ways - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig::new(4, 2, 64).with_policy(policy))
    }

    /// Address with a given set index and tag for the tiny geometry.
    fn addr(set: u64, tag: u64) -> u64 {
        (tag * 4 + set) * 64
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(ReplacementPolicy::Lru);
        assert!(!c.access(addr(0, 1), Owner::Attacker, false).hit);
        assert!(c.access(addr(0, 1), Owner::Attacker, false).hit);
        assert!(c.probe(addr(0, 1)));
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.access(addr(0, 1), Owner::Attacker, false);
        assert!(c.access(addr(0, 1) + 63, Owner::Attacker, false).hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.access(addr(0, 1), Owner::Attacker, false);
        c.access(addr(0, 2), Owner::Attacker, false);
        // touch tag 1 so tag 2 becomes LRU
        c.access(addr(0, 1), Owner::Attacker, false);
        let out = c.access(addr(0, 3), Owner::Attacker, false);
        assert_eq!(out.evicted, Some((addr(0, 2), Owner::Attacker)));
        assert!(c.probe(addr(0, 1)));
        assert!(!c.probe(addr(0, 2)));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut c = tiny(ReplacementPolicy::Fifo);
        c.access(addr(0, 1), Owner::Attacker, false);
        c.access(addr(0, 2), Owner::Attacker, false);
        // touching tag 1 must NOT save it under FIFO
        c.access(addr(0, 1), Owner::Attacker, false);
        let out = c.access(addr(0, 3), Owner::Attacker, false);
        assert_eq!(out.evicted, Some((addr(0, 1), Owner::Attacker)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = Cache::new(
                CacheConfig::new(4, 2, 64)
                    .with_policy(ReplacementPolicy::Random)
                    .with_seed(seed),
            );
            let mut evictions = Vec::new();
            for t in 1..20 {
                if let Some(e) = c.access(addr(0, t), Owner::Attacker, false).evicted {
                    evictions.push(e.0);
                }
            }
            evictions
        };
        assert_eq!(run(7), run(7));
        // different seed gives a different (almost surely) eviction order —
        // not asserted to avoid a flaky test, determinism is the contract.
    }

    #[test]
    fn plru_victim_changes_after_touch() {
        let mut c = Cache::new(CacheConfig::new(1, 4, 64).with_policy(ReplacementPolicy::TreePlru));
        for t in 0..4 {
            c.access(addr(0, t), Owner::Attacker, false);
        }
        // All ways valid; touching way for tag 3 should steer the victim
        // away from it.
        c.access(4 * 3 * 64, Owner::Attacker, false);
        let out = c.access(4 * 100 * 64, Owner::Attacker, false);
        assert!(out.evicted.is_some());
        assert_ne!(out.evicted.unwrap().0, 4 * 3 * 64);
    }

    #[test]
    fn invalidate_reports_presence() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.access(addr(1, 5), Owner::Victim, false);
        assert!(c.invalidate(addr(1, 5)));
        assert!(!c.invalidate(addr(1, 5)));
        assert!(!c.probe(addr(1, 5)));
    }

    #[test]
    fn prefill_yields_full_io() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.prefill(Owner::Other);
        let s = c.state();
        assert_eq!(s.ao, 0.0);
        assert_eq!(s.io, 1.0);
        assert_eq!(c.lines_valid(), 8);
    }

    #[test]
    fn occupancy_tracks_owners() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.prefill(Owner::Other);
        c.access(addr(0, 9), Owner::Attacker, false);
        c.access(addr(1, 9), Owner::Attacker, false);
        let s = c.state();
        assert!((s.ao - 2.0 / 8.0).abs() < 1e-12);
        assert!((s.io - 6.0 / 8.0).abs() < 1e-12);
        assert!(s.ao + s.io <= 1.0 + 1e-12);
    }

    #[test]
    fn eviction_addr_reconstruction_roundtrips() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.access(addr(2, 7), Owner::Victim, false);
        c.access(addr(2, 8), Owner::Victim, false);
        let out = c.access(addr(2, 9), Owner::Victim, false);
        assert_eq!(out.evicted, Some((addr(2, 7), Owner::Victim)));
    }

    #[test]
    fn sets_owned_by_reports_attacker_sets() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.access(addr(0, 1), Owner::Attacker, false);
        c.access(addr(3, 1), Owner::Attacker, false);
        c.access(addr(2, 1), Owner::Victim, false);
        assert_eq!(c.sets_owned_by(Owner::Attacker), vec![0, 3]);
        assert_eq!(c.sets_owned_by(Owner::Victim), vec![2]);
    }

    #[test]
    fn displace_removes_exact_line_or_set_victim() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.prefill(Owner::Other);
        assert_eq!(c.lines_valid(), 8);
        // addr not present: displaces the set's victim line
        assert!(c.displace(addr(0, 5)));
        assert_eq!(c.lines_valid(), 7);
        // exact line present: displaces it precisely
        c.access(addr(1, 9), Owner::Attacker, false);
        assert!(c.displace(addr(1, 9)));
        assert!(!c.probe(addr(1, 9)));
    }

    #[test]
    fn displace_on_empty_set_is_noop() {
        let mut c = tiny(ReplacementPolicy::Lru);
        assert!(!c.displace(addr(2, 1)));
        assert_eq!(c.lines_valid(), 0);
    }

    #[test]
    fn partition_confines_victim_fills() {
        let mut c = Cache::new(CacheConfig::new(4, 4, 64).with_reserved_victim_ways(2));
        // Attacker fills its 2 allowed ways of set 0.
        c.access(addr(0, 1), Owner::Attacker, false);
        c.access(addr(0, 2), Owner::Attacker, false);
        // Victim fills never evict attacker lines...
        for t in 10..20 {
            c.access(addr(0, t), Owner::Victim, false);
        }
        assert!(c.probe(addr(0, 1)), "attacker line survives victim fills");
        assert!(c.probe(addr(0, 2)));
        // ...and attacker fills never evict victim lines.
        c.clear();
        c.access(addr(0, 1), Owner::Victim, false);
        for t in 10..20 {
            c.access(addr(0, t), Owner::Attacker, false);
        }
        assert!(c.probe(addr(0, 1)), "victim line survives attacker fills");
    }

    #[test]
    fn partition_does_not_affect_hits() {
        let mut c = Cache::new(CacheConfig::new(4, 4, 64).with_reserved_victim_ways(2));
        c.access(addr(0, 1), Owner::Victim, false);
        // the attacker can still *hit* the victim's cached line
        assert!(c.access(addr(0, 1), Owner::Attacker, false).hit);
    }

    #[test]
    #[should_panic(expected = "partition must leave ways")]
    fn full_reservation_rejected() {
        let _ = CacheConfig::new(4, 4, 64).with_reserved_victim_ways(4);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.prefill(Owner::Other);
        c.clear();
        assert_eq!(c.lines_valid(), 0);
        let s = c.state();
        assert_eq!((s.ao, s.io), (0.0, 0.0));
    }

    #[test]
    fn stats_count_demand_accesses_and_flushes() {
        let mut c = tiny(ReplacementPolicy::Lru);
        assert_eq!(c.stats(), CacheStats::default());
        c.access(addr(0, 1), Owner::Attacker, false); // miss
        c.access(addr(0, 1), Owner::Attacker, false); // hit
        c.access(addr(1, 1), Owner::Attacker, true); // miss
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 2));
        assert_eq!(st.accesses(), 3);

        assert!(c.invalidate(addr(0, 1)));
        assert!(!c.invalidate(addr(0, 1))); // already gone: not a flush
        assert!(c.displace(addr(1, 1))); // present: flush
        assert!(!c.displace(addr(0, 7))); // empty set: nothing to displace
        assert_eq!(c.stats().flushes, 2);

        // inclusive fills are not demand accesses
        c.fill(addr(2, 1), Owner::Victim);
        assert_eq!(c.stats().accesses(), 3);

        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());

        let mut total = CacheStats::default();
        total.merge(&st);
        total.merge(&st);
        assert_eq!(total.accesses(), 6);
    }
}
