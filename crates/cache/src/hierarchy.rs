//! A two-level inclusive cache hierarchy: split L1 (data + instruction)
//! backed by a shared last-level cache.

use crate::cache::{Cache, Owner};
use crate::config::HierarchyConfig;

/// Outcome of a data access against the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOutcome {
    /// L1D hit?
    pub l1_hit: bool,
    /// LLC hit? (Only meaningful when `l1_hit` is false.)
    pub llc_hit: bool,
}

impl DataOutcome {
    /// Whether the access missed all cache levels.
    pub fn full_miss(&self) -> bool {
        !self.l1_hit && !self.llc_hit
    }
}

/// Outcome of an instruction fetch against the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOutcome {
    /// L1I hit?
    pub l1i_hit: bool,
    /// LLC hit? (Only meaningful when `l1i_hit` is false.)
    pub llc_hit: bool,
}

/// The simulated cache hierarchy.
///
/// The LLC is *inclusive*: every L1-resident line is also LLC-resident, and
/// evicting a line from the LLC back-invalidates it from both L1s. This is
/// the property Prime+Probe on the LLC relies on (an attacker can evict the
/// victim's L1 lines by priming the LLC), matching the paper's Intel
/// test machine.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1d: Cache,
    l1i: Cache,
    llc: Cache,
    inclusive: bool,
}

impl Hierarchy {
    /// Build an empty hierarchy from `cfg`.
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            l1d: Cache::new(cfg.l1d),
            l1i: Cache::new(cfg.l1i),
            llc: Cache::new(cfg.llc),
            inclusive: cfg.inclusive,
        }
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The last-level cache.
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// Perform a data load/store at `addr` on behalf of `owner`.
    pub fn access_data(&mut self, addr: u64, owner: Owner, is_write: bool) -> DataOutcome {
        let l1 = self.l1d.access(addr, owner, is_write);
        if l1.hit {
            if self.inclusive {
                // Inclusive invariant: refresh LLC recency as well.
                let llc = self.llc.access(addr, owner, is_write);
                debug_assert!(llc.hit, "inclusion violated: L1 hit without LLC line");
            }
            return DataOutcome {
                l1_hit: true,
                llc_hit: true,
            };
        }
        let llc = self.llc.access(addr, owner, is_write);
        if self.inclusive {
            if let Some((victim_addr, _)) = llc.evicted {
                // Back-invalidate to preserve inclusion.
                self.l1d.invalidate(victim_addr);
                self.l1i.invalidate(victim_addr);
            }
        }
        DataOutcome {
            l1_hit: false,
            llc_hit: llc.hit,
        }
    }

    /// Fetch the instruction line at `addr` on behalf of `owner`.
    pub fn fetch_inst(&mut self, addr: u64, owner: Owner) -> FetchOutcome {
        let l1 = self.l1i.access(addr, owner, false);
        if l1.hit {
            if self.inclusive {
                let llc = self.llc.access(addr, owner, false);
                debug_assert!(llc.hit, "inclusion violated: L1I hit without LLC line");
            }
            return FetchOutcome {
                l1i_hit: true,
                llc_hit: true,
            };
        }
        let llc = self.llc.access(addr, owner, false);
        if self.inclusive {
            if let Some((victim_addr, _)) = llc.evicted {
                self.l1d.invalidate(victim_addr);
                self.l1i.invalidate(victim_addr);
            }
        }
        FetchOutcome {
            l1i_hit: false,
            llc_hit: llc.hit,
        }
    }

    /// Flush the line containing `addr` from every level (`clflush`).
    ///
    /// Returns whether the line was present in the LLC — the bit that the
    /// Flush+Flush timing channel observes (flushing a cached line takes
    /// measurably longer than flushing an uncached one).
    pub fn flush(&mut self, addr: u64) -> bool {
        self.l1d.invalidate(addr);
        self.l1i.invalidate(addr);
        self.llc.invalidate(addr)
    }

    /// Whether `addr`'s line is present at any level.
    pub fn probe_data(&self, addr: u64) -> bool {
        self.l1d.probe(addr) || self.llc.probe(addr)
    }

    /// Empty every level.
    pub fn clear(&mut self) {
        self.l1d.clear();
        self.l1i.clear();
        self.llc.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn cold_access_misses_everywhere_then_hits() {
        let mut h = tiny();
        let out = h.access_data(0x1000, Owner::Attacker, false);
        assert!(out.full_miss());
        let out = h.access_data(0x1000, Owner::Attacker, false);
        assert!(out.l1_hit);
    }

    #[test]
    fn l1_eviction_leaves_llc_hit() {
        let mut h = tiny();
        // L1D tiny(): 16 sets x 4 ways. Fill set 0 of L1 with 5 conflicting
        // lines; the first should fall out of L1 but stay in the larger LLC.
        let stride_l1 = 16 * 64; // same L1 set
        for i in 0..5u64 {
            h.access_data(0x10_0000 + i * stride_l1 * 4, Owner::Attacker, false);
        }
        // LLC has 64 sets so these map to different LLC sets — all resident.
        let out = h.access_data(0x10_0000, Owner::Attacker, false);
        assert!(!out.l1_hit || out.llc_hit, "must at least be LLC resident");
    }

    #[test]
    fn flush_removes_from_all_levels_and_reports_presence() {
        let mut h = tiny();
        h.access_data(0x2000, Owner::Victim, false);
        assert!(h.flush(0x2000));
        assert!(!h.probe_data(0x2000));
        assert!(!h.flush(0x2000), "second flush finds nothing");
    }

    #[test]
    fn llc_eviction_back_invalidates_l1() {
        // Make the LLC *smaller* in associativity on one set than the L1
        // can hold so we can force an LLC eviction of an L1-resident line.
        let cfg = HierarchyConfig {
            l1d: CacheConfig::new(1, 8, 64),
            l1i: CacheConfig::new(1, 8, 64),
            llc: CacheConfig::new(1, 2, 64),
            inclusive: true,
        };
        let mut h = Hierarchy::new(cfg);
        h.access_data(0x0, Owner::Victim, false);
        h.access_data(0x40, Owner::Attacker, false);
        // This third distinct line evicts LLC way holding 0x0 (LRU) and must
        // back-invalidate it from L1D too.
        h.access_data(0x80, Owner::Attacker, false);
        let out = h.access_data(0x0, Owner::Victim, false);
        assert!(!out.l1_hit, "back-invalidation must remove the L1 copy");
    }

    #[test]
    fn non_inclusive_llc_keeps_l1_lines() {
        // Same geometry as the back-invalidation test, but non-inclusive:
        // the L1 copy must survive the LLC eviction.
        let cfg = HierarchyConfig {
            l1d: CacheConfig::new(1, 8, 64),
            l1i: CacheConfig::new(1, 8, 64),
            llc: CacheConfig::new(1, 2, 64),
            inclusive: false,
        };
        let mut h = Hierarchy::new(cfg);
        h.access_data(0x0, Owner::Victim, false);
        h.access_data(0x40, Owner::Attacker, false);
        h.access_data(0x80, Owner::Attacker, false);
        let out = h.access_data(0x0, Owner::Victim, false);
        assert!(
            out.l1_hit,
            "without inclusion, LLC evictions cannot reach the L1"
        );
    }

    #[test]
    fn instruction_fetch_populates_l1i() {
        let mut h = tiny();
        let f = h.fetch_inst(0x40_0000, Owner::Attacker);
        assert!(!f.l1i_hit);
        let f = h.fetch_inst(0x40_0000, Owner::Attacker);
        assert!(f.l1i_hit);
    }

    #[test]
    fn clear_resets() {
        let mut h = tiny();
        h.access_data(0x3000, Owner::Attacker, false);
        h.clear();
        assert!(!h.probe_data(0x3000));
    }
}
