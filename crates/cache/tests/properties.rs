//! Property-based tests for the cache model: occupancy invariants under
//! arbitrary operation sequences, presence semantics, and geometry.

use proptest::prelude::*;

use sca_cache::{Cache, CacheConfig, CacheState, Hierarchy, HierarchyConfig, Owner, ReplacementPolicy};

#[derive(Debug, Clone)]
enum Op {
    Access(u64, Owner, bool),
    Flush(u64),
    Displace(u64),
}

fn arb_owner() -> impl Strategy<Value = Owner> {
    prop_oneof![Just(Owner::Attacker), Just(Owner::Victim), Just(Owner::Other)]
}

fn arb_op() -> impl Strategy<Value = Op> {
    let addr = 0u64..0x8000;
    prop_oneof![
        (addr.clone(), arb_owner(), any::<bool>()).prop_map(|(a, o, w)| Op::Access(a, o, w)),
        addr.clone().prop_map(Op::Flush),
        addr.prop_map(Op::Displace),
    ]
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Fifo),
        Just(ReplacementPolicy::TreePlru),
        Just(ReplacementPolicy::Random),
    ]
}

proptest! {
    /// Definition 3's invariant: `AO + IO <= 1` and both rates in `[0, 1]`,
    /// no matter what sequence of operations runs.
    #[test]
    fn occupancy_invariant_holds(
        policy in arb_policy(),
        ops in proptest::collection::vec(arb_op(), 0..200),
    ) {
        let mut c = Cache::new(CacheConfig::new(8, 2, 64).with_policy(policy));
        c.prefill(Owner::Other);
        for op in ops {
            match op {
                Op::Access(a, o, w) => {
                    c.access(a, o, w);
                }
                Op::Flush(a) => {
                    c.invalidate(a);
                }
                Op::Displace(a) => {
                    c.displace(a);
                }
            }
            let s = c.state();
            prop_assert!((0.0..=1.0).contains(&s.ao));
            prop_assert!((0.0..=1.0).contains(&s.io));
            prop_assert!(s.ao + s.io <= 1.0 + 1e-9);
            prop_assert!(c.lines_valid() <= c.config().lines());
        }
    }

    /// An accessed line is present until invalidated, then absent.
    #[test]
    fn access_probe_invalidate_semantics(addr in 0u64..0x8000, policy in arb_policy()) {
        let mut c = Cache::new(CacheConfig::new(16, 4, 64).with_policy(policy));
        prop_assert!(!c.probe(addr));
        c.access(addr, Owner::Attacker, false);
        prop_assert!(c.probe(addr));
        prop_assert_eq!(c.owner_of(addr), Some(Owner::Attacker));
        prop_assert!(c.invalidate(addr));
        prop_assert!(!c.probe(addr));
        prop_assert!(!c.invalidate(addr));
    }

    /// Occupancy counts decompose by owner: AO and IO track exactly the
    /// attacker/non-attacker valid-line counts.
    #[test]
    fn occupancy_decomposes_by_owner(
        ops in proptest::collection::vec((0u64..0x2000, arb_owner()), 1..100),
    ) {
        let mut c = Cache::new(CacheConfig::new(8, 4, 64));
        for (a, o) in ops {
            c.access(a, o, false);
        }
        let total = c.config().lines() as f64;
        let s = c.state();
        let attacker = c.lines_owned_by(Owner::Attacker);
        let other = c.lines_valid() - attacker;
        prop_assert!((s.ao - attacker as f64 / total).abs() < 1e-12);
        prop_assert!((s.io - other as f64 / total).abs() < 1e-12);
    }

    /// Set index is always in range and line-aligned addresses of one line
    /// map to the same set.
    #[test]
    fn set_index_in_range(addr in 0u64..u64::MAX - 64) {
        let cfg = CacheConfig::new(64, 8, 64);
        let set = cfg.set_index(addr);
        prop_assert!(set < cfg.sets);
        // every byte offset within the line maps to the same set
        prop_assert_eq!(set, cfg.set_index(cfg.line_addr(addr)));
        prop_assert_eq!(set, cfg.set_index(cfg.line_addr(addr) + 63));
    }

    /// The hierarchy preserves inclusion: after any access sequence, every
    /// L1-resident line is LLC-resident.
    #[test]
    fn hierarchy_inclusion(
        ops in proptest::collection::vec((0u64..0x10000, any::<bool>()), 0..300),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        let mut touched = Vec::new();
        for (a, w) in ops {
            h.access_data(a, Owner::Attacker, w);
            touched.push(a);
        }
        for a in touched {
            if h.l1d().probe(a) {
                prop_assert!(h.llc().probe(a), "inclusion violated at {a:#x}");
            }
        }
    }

    /// CacheState change magnitude is symmetric and bounded by 1.
    #[test]
    fn state_change_bounded(
        ao1 in 0.0f64..=0.5, io1 in 0.0f64..=0.5,
        ao2 in 0.0f64..=0.5, io2 in 0.0f64..=0.5,
    ) {
        let a = CacheState::new(ao1, io1);
        let b = CacheState::new(ao2, io2);
        let d = a.change_to(&b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - b.change_to(&a)).abs() < 1e-12);
    }
}
