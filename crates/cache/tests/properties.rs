//! Property-based tests for the cache model: occupancy invariants under
//! arbitrary operation sequences, presence semantics, and geometry.
//! Randomized inputs come from seeded [`SmallRng`] loops so runs are
//! deterministic.

use sca_cache::{
    Cache, CacheConfig, CacheState, Hierarchy, HierarchyConfig, Owner, ReplacementPolicy,
};
use sca_isa::rng::SmallRng;

#[derive(Debug, Clone)]
enum Op {
    Access(u64, Owner, bool),
    Flush(u64),
    Displace(u64),
}

fn arb_owner(rng: &mut SmallRng) -> Owner {
    *rng.choose(&[Owner::Attacker, Owner::Victim, Owner::Other])
        .unwrap()
}

fn arb_op(rng: &mut SmallRng) -> Op {
    let addr = rng.gen_range(0u64..0x8000);
    match rng.gen_range(0..3u32) {
        0 => Op::Access(addr, arb_owner(rng), rng.gen_bool(0.5)),
        1 => Op::Flush(addr),
        _ => Op::Displace(addr),
    }
}

fn arb_policy(rng: &mut SmallRng) -> ReplacementPolicy {
    *rng.choose(&[
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ])
    .unwrap()
}

/// Definition 3's invariant: `AO + IO <= 1` and both rates in `[0, 1]`,
/// no matter what sequence of operations runs.
#[test]
fn occupancy_invariant_holds() {
    let mut rng = SmallRng::seed_from_u64(0xca_001);
    for _ in 0..64 {
        let policy = arb_policy(&mut rng);
        let mut c = Cache::new(CacheConfig::new(8, 2, 64).with_policy(policy));
        c.prefill(Owner::Other);
        for _ in 0..rng.gen_range(0..200usize) {
            match arb_op(&mut rng) {
                Op::Access(a, o, w) => {
                    c.access(a, o, w);
                }
                Op::Flush(a) => {
                    c.invalidate(a);
                }
                Op::Displace(a) => {
                    c.displace(a);
                }
            }
            let s = c.state();
            assert!((0.0..=1.0).contains(&s.ao));
            assert!((0.0..=1.0).contains(&s.io));
            assert!(s.ao + s.io <= 1.0 + 1e-9);
            assert!(c.lines_valid() <= c.config().lines());
        }
    }
}

/// An accessed line is present until invalidated, then absent.
#[test]
fn access_probe_invalidate_semantics() {
    let mut rng = SmallRng::seed_from_u64(0xca_002);
    for _ in 0..128 {
        let addr = rng.gen_range(0u64..0x8000);
        let mut c = Cache::new(CacheConfig::new(16, 4, 64).with_policy(arb_policy(&mut rng)));
        assert!(!c.probe(addr));
        c.access(addr, Owner::Attacker, false);
        assert!(c.probe(addr));
        assert_eq!(c.owner_of(addr), Some(Owner::Attacker));
        assert!(c.invalidate(addr));
        assert!(!c.probe(addr));
        assert!(!c.invalidate(addr));
    }
}

/// Occupancy counts decompose by owner: AO and IO track exactly the
/// attacker/non-attacker valid-line counts.
#[test]
fn occupancy_decomposes_by_owner() {
    let mut rng = SmallRng::seed_from_u64(0xca_003);
    for _ in 0..128 {
        let mut c = Cache::new(CacheConfig::new(8, 4, 64));
        for _ in 0..rng.gen_range(1..100usize) {
            let a = rng.gen_range(0u64..0x2000);
            let o = arb_owner(&mut rng);
            c.access(a, o, false);
        }
        let total = c.config().lines() as f64;
        let s = c.state();
        let attacker = c.lines_owned_by(Owner::Attacker);
        let other = c.lines_valid() - attacker;
        assert!((s.ao - attacker as f64 / total).abs() < 1e-12);
        assert!((s.io - other as f64 / total).abs() < 1e-12);
    }
}

/// Set index is always in range and line-aligned addresses of one line
/// map to the same set.
#[test]
fn set_index_in_range() {
    let mut rng = SmallRng::seed_from_u64(0xca_004);
    for _ in 0..512 {
        let addr = rng.gen_range(0u64..u64::MAX - 64);
        let cfg = CacheConfig::new(64, 8, 64);
        let set = cfg.set_index(addr);
        assert!(set < cfg.sets);
        // every byte offset within the line maps to the same set
        assert_eq!(set, cfg.set_index(cfg.line_addr(addr)));
        assert_eq!(set, cfg.set_index(cfg.line_addr(addr) + 63));
    }
}

/// The hierarchy preserves inclusion: after any access sequence, every
/// L1-resident line is LLC-resident.
#[test]
fn hierarchy_inclusion() {
    let mut rng = SmallRng::seed_from_u64(0xca_005);
    for _ in 0..32 {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        let mut touched = Vec::new();
        for _ in 0..rng.gen_range(0..300usize) {
            let a = rng.gen_range(0u64..0x10000);
            h.access_data(a, Owner::Attacker, rng.gen_bool(0.5));
            touched.push(a);
        }
        for a in touched {
            if h.l1d().probe(a) {
                assert!(h.llc().probe(a), "inclusion violated at {a:#x}");
            }
        }
    }
}

/// CacheState change magnitude is symmetric and bounded by 1.
#[test]
fn state_change_bounded() {
    let mut rng = SmallRng::seed_from_u64(0xca_006);
    let unit_half = |rng: &mut SmallRng| rng.gen_range(0..=500_000u64) as f64 / 1_000_000.0;
    for _ in 0..256 {
        let a = CacheState::new(unit_half(&mut rng), unit_half(&mut rng));
        let b = CacheState::new(unit_half(&mut rng), unit_half(&mut rng));
        let d = a.change_to(&b);
        assert!((0.0..=1.0).contains(&d));
        assert!((d - b.change_to(&a)).abs() < 1e-12);
    }
}
