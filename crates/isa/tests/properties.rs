//! Property-based tests for the micro-ISA: normalization invariances,
//! builder/address arithmetic, and operator semantics.

use proptest::prelude::*;

use sca_isa::{normalize_inst, AluOp, Cond, Inst, MemRef, Operand, Program, Reg, INST_SIZE, TEXT_BASE};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(Reg::from_index)
}

fn arb_mem() -> impl Strategy<Value = MemRef> {
    (
        proptest::option::of(arb_reg()),
        proptest::option::of(arb_reg()),
        prop_oneof![Just(1u8), Just(2), Just(4), Just(8), Just(64)],
        -0x1_0000i64..0x1_0000,
    )
        .prop_map(|(base, index, scale, disp)| MemRef {
            base,
            // scale is only meaningful with an index register; keep the
            // generated reference canonical so text round-trips compare equal
            scale: if index.is_some() { scale } else { 1 },
            index,
            disp,
        })
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
    ]
}

/// A non-branch instruction (branch targets need a program context).
fn arb_straight_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::MovReg { dst, src }),
        (arb_reg(), arb_mem()).prop_map(|(dst, addr)| Inst::Load { dst, addr }),
        (arb_reg(), arb_mem()).prop_map(|(src, addr)| Inst::Store { src, addr }),
        (arb_alu_op(), arb_reg(), arb_reg())
            .prop_map(|(op, dst, src)| Inst::Alu {
                op,
                dst,
                src: Operand::Reg(src)
            }),
        (arb_alu_op(), arb_reg(), any::<i64>())
            .prop_map(|(op, dst, imm)| Inst::Alu {
                op,
                dst,
                src: Operand::Imm(imm)
            }),
        (arb_reg(), arb_reg()).prop_map(|(lhs, rhs)| Inst::Cmp {
            lhs,
            rhs: Operand::Reg(rhs)
        }),
        arb_mem().prop_map(|addr| Inst::Clflush { addr }),
        arb_reg().prop_map(|dst| Inst::Rdtscp { dst }),
        Just(Inst::Nop),
    ]
}

proptest! {
    /// Rule 3: register identities never survive normalization.
    #[test]
    fn normalization_erases_registers(
        dst1 in arb_reg(), dst2 in arb_reg(), src1 in arb_reg(), src2 in arb_reg()
    ) {
        let a = Inst::MovReg { dst: dst1, src: src1 };
        let b = Inst::MovReg { dst: dst2, src: src2 };
        prop_assert_eq!(normalize_inst(&a), normalize_inst(&b));
    }

    /// Rule 1: immediate values never survive normalization.
    #[test]
    fn normalization_erases_immediates(r in arb_reg(), a in any::<i64>(), b in any::<i64>()) {
        let x = Inst::MovImm { dst: r, imm: a };
        let y = Inst::MovImm { dst: r, imm: b };
        prop_assert_eq!(normalize_inst(&x), normalize_inst(&y));
    }

    /// Rule 2: memory addressing details never survive normalization.
    #[test]
    fn normalization_erases_memory_refs(r in arb_reg(), m1 in arb_mem(), m2 in arb_mem()) {
        let x = Inst::Load { dst: r, addr: m1 };
        let y = Inst::Load { dst: r, addr: m2 };
        prop_assert_eq!(normalize_inst(&x), normalize_inst(&y));
    }

    /// Normalization is a pure function of the instruction.
    #[test]
    fn normalization_is_deterministic(inst in arb_straight_inst()) {
        prop_assert_eq!(normalize_inst(&inst), normalize_inst(&inst));
    }

    /// Address arithmetic roundtrips for every instruction of a program.
    #[test]
    fn addr_index_roundtrip(insts in proptest::collection::vec(arb_straight_inst(), 1..64)) {
        let p = Program::from_parts("prop", insts, Default::default());
        for i in 0..p.len() {
            let addr = p.addr_of(i);
            prop_assert_eq!(p.index_of_addr(addr), Some(i));
            prop_assert_eq!(addr, TEXT_BASE + i as u64 * INST_SIZE);
        }
        prop_assert_eq!(p.index_of_addr(p.addr_of(p.len())), None);
    }

    /// `Cond::negate` is an involution and complements `eval`.
    #[test]
    fn cond_negation_complements(c in arb_cond(), l in any::<u64>(), r in any::<u64>()) {
        prop_assert_eq!(c.negate().negate(), c);
        prop_assert_eq!(c.negate().eval(l, r), !c.eval(l, r));
    }

    /// Add and Sub are wrapping inverses; Xor is self-inverse.
    #[test]
    fn alu_inverses(x in any::<u64>(), k in any::<u64>()) {
        prop_assert_eq!(AluOp::Sub.apply(AluOp::Add.apply(x, k), k), x);
        prop_assert_eq!(AluOp::Xor.apply(AluOp::Xor.apply(x, k), k), x);
    }

    /// `add r, k` equals `sub r, -k` under wrapping arithmetic — the
    /// equivalence the mutation engine relies on.
    #[test]
    fn add_equals_sub_of_negation(x in any::<u64>(), k in any::<i64>()) {
        let add = AluOp::Add.apply(x, k as u64);
        let sub = AluOp::Sub.apply(x, k.wrapping_neg() as u64);
        prop_assert_eq!(add, sub);
    }

    /// Display of any instruction is nonempty and stable (C-DEBUG-NONEMPTY).
    #[test]
    fn display_nonempty(inst in arb_straight_inst()) {
        prop_assert!(!inst.to_string().is_empty());
        prop_assert_eq!(inst.to_string(), inst.to_string());
    }
}

/// Branch-bearing random programs for assembler round-trip testing.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_straight_inst(), 1..40),
        proptest::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>(), arb_cond(), any::<bool>()), 0..8),
    )
        .prop_map(|(mut insts, branches)| {
            insts.push(Inst::Halt);
            let n = insts.len();
            for (at, target, cond, is_jmp) in branches {
                let at = at.index(n - 1); // never replace the final halt
                let target = target.index(n);
                insts[at] = if is_jmp {
                    Inst::Jmp { target }
                } else {
                    Inst::Br { cond, target }
                };
            }
            Program::from_parts("prop", insts, Default::default())
        })
}

proptest! {
    /// `assemble(to_asm(p))` reproduces any program's instructions exactly.
    #[test]
    fn assembler_roundtrip(p in arb_program()) {
        let text = sca_isa::to_asm(&p);
        let q = sca_isa::assemble("prop", &text).expect("reassemble");
        prop_assert_eq!(p.insts(), q.insts());
    }
}
