//! Property-based tests for the micro-ISA: normalization invariances,
//! builder/address arithmetic, and operator semantics. Randomized inputs
//! come from seeded [`SmallRng`] loops so runs are deterministic.

use sca_isa::rng::SmallRng;
use sca_isa::{
    normalize_inst, AluOp, Cond, Inst, MemRef, Operand, Program, Reg, INST_SIZE, TEXT_BASE,
};

const CASES: usize = 256;

fn arb_reg(rng: &mut SmallRng) -> Reg {
    Reg::from_index(rng.gen_range(0..16usize))
}

fn arb_mem(rng: &mut SmallRng) -> MemRef {
    let base = rng.gen_bool(0.5).then(|| arb_reg(rng));
    let index = rng.gen_bool(0.5).then(|| arb_reg(rng));
    let scale = *rng.choose(&[1u8, 2, 4, 8, 64]).unwrap();
    MemRef {
        base,
        // scale is only meaningful with an index register; keep the
        // generated reference canonical so text round-trips compare equal
        scale: if index.is_some() { scale } else { 1 },
        index,
        disp: rng.gen_range(-0x1_0000i64..0x1_0000),
    }
}

fn arb_alu_op(rng: &mut SmallRng) -> AluOp {
    *rng.choose(&[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
    ])
    .unwrap()
}

fn arb_cond(rng: &mut SmallRng) -> Cond {
    *rng.choose(&[Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge])
        .unwrap()
}

/// A non-branch instruction (branch targets need a program context).
fn arb_straight_inst(rng: &mut SmallRng) -> Inst {
    match rng.gen_range(0..10u32) {
        0 => Inst::MovImm {
            dst: arb_reg(rng),
            imm: rng.gen(),
        },
        1 => Inst::MovReg {
            dst: arb_reg(rng),
            src: arb_reg(rng),
        },
        2 => Inst::Load {
            dst: arb_reg(rng),
            addr: arb_mem(rng),
        },
        3 => Inst::Store {
            src: arb_reg(rng),
            addr: arb_mem(rng),
        },
        4 => Inst::Alu {
            op: arb_alu_op(rng),
            dst: arb_reg(rng),
            src: Operand::Reg(arb_reg(rng)),
        },
        5 => Inst::Alu {
            op: arb_alu_op(rng),
            dst: arb_reg(rng),
            src: Operand::Imm(rng.gen()),
        },
        6 => Inst::Cmp {
            lhs: arb_reg(rng),
            rhs: Operand::Reg(arb_reg(rng)),
        },
        7 => Inst::Clflush { addr: arb_mem(rng) },
        8 => Inst::Rdtscp { dst: arb_reg(rng) },
        _ => Inst::Nop,
    }
}

/// Rule 3: register identities never survive normalization.
#[test]
fn normalization_erases_registers() {
    let mut rng = SmallRng::seed_from_u64(0x15a_001);
    for _ in 0..CASES {
        let a = Inst::MovReg {
            dst: arb_reg(&mut rng),
            src: arb_reg(&mut rng),
        };
        let b = Inst::MovReg {
            dst: arb_reg(&mut rng),
            src: arb_reg(&mut rng),
        };
        assert_eq!(normalize_inst(&a), normalize_inst(&b));
    }
}

/// Rule 1: immediate values never survive normalization.
#[test]
fn normalization_erases_immediates() {
    let mut rng = SmallRng::seed_from_u64(0x15a_002);
    for _ in 0..CASES {
        let r = arb_reg(&mut rng);
        let x = Inst::MovImm {
            dst: r,
            imm: rng.gen(),
        };
        let y = Inst::MovImm {
            dst: r,
            imm: rng.gen(),
        };
        assert_eq!(normalize_inst(&x), normalize_inst(&y));
    }
}

/// Rule 2: memory addressing details never survive normalization.
#[test]
fn normalization_erases_memory_refs() {
    let mut rng = SmallRng::seed_from_u64(0x15a_003);
    for _ in 0..CASES {
        let r = arb_reg(&mut rng);
        let x = Inst::Load {
            dst: r,
            addr: arb_mem(&mut rng),
        };
        let y = Inst::Load {
            dst: r,
            addr: arb_mem(&mut rng),
        };
        assert_eq!(normalize_inst(&x), normalize_inst(&y));
    }
}

/// Normalization is a pure function of the instruction.
#[test]
fn normalization_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0x15a_004);
    for _ in 0..CASES {
        let inst = arb_straight_inst(&mut rng);
        assert_eq!(normalize_inst(&inst), normalize_inst(&inst));
    }
}

/// Address arithmetic roundtrips for every instruction of a program.
#[test]
fn addr_index_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x15a_005);
    for _ in 0..64 {
        let n = rng.gen_range(1..64usize);
        let insts: Vec<Inst> = (0..n).map(|_| arb_straight_inst(&mut rng)).collect();
        let p = Program::from_parts("prop", insts, Default::default());
        for i in 0..p.len() {
            let addr = p.addr_of(i);
            assert_eq!(p.index_of_addr(addr), Some(i));
            assert_eq!(addr, TEXT_BASE + i as u64 * INST_SIZE);
        }
        assert_eq!(p.index_of_addr(p.addr_of(p.len())), None);
    }
}

/// `Cond::negate` is an involution and complements `eval`.
#[test]
fn cond_negation_complements() {
    let mut rng = SmallRng::seed_from_u64(0x15a_006);
    for _ in 0..CASES {
        let c = arb_cond(&mut rng);
        let (l, r): (u64, u64) = (rng.gen(), rng.gen());
        assert_eq!(c.negate().negate(), c);
        assert_eq!(c.negate().eval(l, r), !c.eval(l, r));
    }
}

/// Add and Sub are wrapping inverses; Xor is self-inverse.
#[test]
fn alu_inverses() {
    let mut rng = SmallRng::seed_from_u64(0x15a_007);
    for _ in 0..CASES {
        let (x, k): (u64, u64) = (rng.gen(), rng.gen());
        assert_eq!(AluOp::Sub.apply(AluOp::Add.apply(x, k), k), x);
        assert_eq!(AluOp::Xor.apply(AluOp::Xor.apply(x, k), k), x);
    }
}

/// `add r, k` equals `sub r, -k` under wrapping arithmetic — the
/// equivalence the mutation engine relies on.
#[test]
fn add_equals_sub_of_negation() {
    let mut rng = SmallRng::seed_from_u64(0x15a_008);
    for _ in 0..CASES {
        let x: u64 = rng.gen();
        let k: i64 = rng.gen();
        let add = AluOp::Add.apply(x, k as u64);
        let sub = AluOp::Sub.apply(x, k.wrapping_neg() as u64);
        assert_eq!(add, sub);
    }
}

/// Display of any instruction is nonempty and stable (C-DEBUG-NONEMPTY).
#[test]
fn display_nonempty() {
    let mut rng = SmallRng::seed_from_u64(0x15a_009);
    for _ in 0..CASES {
        let inst = arb_straight_inst(&mut rng);
        assert!(!inst.to_string().is_empty());
        assert_eq!(inst.to_string(), inst.to_string());
    }
}

/// Branch-bearing random program for assembler round-trip testing.
fn arb_program(rng: &mut SmallRng) -> Program {
    let n = rng.gen_range(1..40usize);
    let mut insts: Vec<Inst> = (0..n).map(|_| arb_straight_inst(rng)).collect();
    insts.push(Inst::Halt);
    let n = insts.len();
    for _ in 0..rng.gen_range(0..8usize) {
        let at = rng.gen_range(0..n - 1); // never replace the final halt
        let target = rng.gen_range(0..n);
        insts[at] = if rng.gen_bool(0.5) {
            Inst::Jmp { target }
        } else {
            Inst::Br {
                cond: arb_cond(rng),
                target,
            }
        };
    }
    Program::from_parts("prop", insts, Default::default())
}

/// `assemble(to_asm(p))` reproduces any program's instructions exactly.
#[test]
fn assembler_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x15a_00a);
    for _ in 0..128 {
        let p = arb_program(&mut rng);
        let text = sca_isa::to_asm(&p);
        let q = sca_isa::assemble("prop", &text).expect("reassemble");
        assert_eq!(p.insts(), q.insts());
    }
}
