//! Instruction normalization for compiler-robust similarity comparison.
//!
//! Section III-B.1 of the paper normalizes instructions before computing the
//! Levenshtein distance between instruction sequences, using three rules
//! borrowed from SPAIN \[20\]:
//!
//! 1. immediate data is replaced by `imm`,
//! 2. accessed memory addresses are replaced by `mem`,
//! 3. registers are replaced by `reg`.
//!
//! `mov -0x18(%rbp), %rax` thus becomes `mov mem, reg`. The same rules apply
//! verbatim to the micro-ISA.

use std::fmt;

use crate::inst::Inst;

/// A normalized operand: the abstraction class of the concrete operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NormOperand {
    /// Any register.
    Reg,
    /// Any immediate.
    Imm,
    /// Any memory reference.
    Mem,
}

impl fmt::Display for NormOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormOperand::Reg => write!(f, "reg"),
            NormOperand::Imm => write!(f, "imm"),
            NormOperand::Mem => write!(f, "mem"),
        }
    }
}

/// A normalized instruction: mnemonic plus abstracted operands.
///
/// Two normalized instructions compare equal exactly when the original
/// instructions have the same mnemonic and operand *classes*; concrete
/// registers, immediates, addresses, and branch targets are erased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NormInst {
    /// The instruction mnemonic (`"mov"`, `"ld"`, `"beq"`, ...).
    pub mnemonic: &'static str,
    /// Abstracted operands in syntax order (up to two).
    pub operands: [Option<NormOperand>; 2],
}

impl NormInst {
    /// Construct a normalized instruction with no operands.
    pub fn nullary(mnemonic: &'static str) -> NormInst {
        NormInst {
            mnemonic,
            operands: [None, None],
        }
    }

    /// Construct a normalized instruction with one operand.
    pub fn unary(mnemonic: &'static str, a: NormOperand) -> NormInst {
        NormInst {
            mnemonic,
            operands: [Some(a), None],
        }
    }

    /// Construct a normalized instruction with two operands.
    pub fn binary(mnemonic: &'static str, a: NormOperand, b: NormOperand) -> NormInst {
        NormInst {
            mnemonic,
            operands: [Some(a), Some(b)],
        }
    }
}

impl fmt::Display for NormInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic)?;
        match (self.operands[0], self.operands[1]) {
            (Some(a), Some(b)) => write!(f, " {a}, {b}"),
            (Some(a), None) => write!(f, " {a}"),
            _ => Ok(()),
        }
    }
}

/// The closed set of mnemonics normalized instructions can carry, as
/// `'static` strings (needed to parse a [`NormInst`] back from text).
const MNEMONICS: [&str; 22] = [
    "mov", "ld", "st", "cmp", "jmp", "clflush", "rdtscp", "lfence", "mfence", "vyield", "nop",
    "halt", "add", "sub", "mul", "and", "or", "xor", "shl", "shr", // AluOp
    "beq", "bne", // Cond (subset; see below for the rest)
];
const COND_MNEMONICS: [&str; 4] = ["blt", "ble", "bgt", "bge"];

fn static_mnemonic(s: &str) -> Option<&'static str> {
    MNEMONICS
        .iter()
        .chain(COND_MNEMONICS.iter())
        .find(|m| **m == s)
        .copied()
}

/// Error from parsing a [`NormInst`] out of its `Display` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNormInstError(String);

impl fmt::Display for ParseNormInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid normalized instruction `{}`", self.0)
    }
}

impl std::error::Error for ParseNormInstError {}

impl std::str::FromStr for NormOperand {
    type Err = ParseNormInstError;

    fn from_str(s: &str) -> Result<NormOperand, ParseNormInstError> {
        match s {
            "reg" => Ok(NormOperand::Reg),
            "imm" => Ok(NormOperand::Imm),
            "mem" => Ok(NormOperand::Mem),
            other => Err(ParseNormInstError(other.to_string())),
        }
    }
}

impl std::str::FromStr for NormInst {
    type Err = ParseNormInstError;

    /// Parse the `Display` form back (`"mov reg, imm"`, `"nop"`, ...).
    fn from_str(s: &str) -> Result<NormInst, ParseNormInstError> {
        let s = s.trim();
        let (mnemonic, rest) = match s.split_once(' ') {
            Some((m, r)) => (m, r.trim()),
            None => (s, ""),
        };
        let mnemonic =
            static_mnemonic(mnemonic).ok_or_else(|| ParseNormInstError(s.to_string()))?;
        let mut operands = [None, None];
        if !rest.is_empty() {
            for (i, tok) in rest.split(',').map(str::trim).enumerate() {
                if i >= 2 {
                    return Err(ParseNormInstError(s.to_string()));
                }
                operands[i] = Some(tok.parse()?);
            }
        }
        Ok(NormInst { mnemonic, operands })
    }
}

/// Normalize one instruction per the paper's imm/mem/reg rules.
///
/// ```
/// use sca_isa::{normalize_inst, Inst, MemRef, Reg};
///
/// let i = Inst::Load { dst: Reg::R2, addr: MemRef::base_disp(Reg::R1, -0x18) };
/// assert_eq!(normalize_inst(&i).to_string(), "ld reg, mem");
/// ```
pub fn normalize_inst(inst: &Inst) -> NormInst {
    use crate::inst::Operand;
    use NormOperand::{Imm, Mem, Reg};
    let operand_class = |o: &Operand| match o {
        Operand::Reg(_) => Reg,
        Operand::Imm(_) => Imm,
    };
    match inst {
        Inst::MovImm { .. } => NormInst::binary("mov", Reg, Imm),
        Inst::MovReg { .. } => NormInst::binary("mov", Reg, Reg),
        Inst::Load { .. } => NormInst::binary("ld", Reg, Mem),
        Inst::Store { .. } => NormInst::binary("st", Mem, Reg),
        Inst::Alu { op, src, .. } => NormInst::binary(op.mnemonic(), Reg, operand_class(src)),
        Inst::Cmp { rhs, .. } => NormInst::binary("cmp", Reg, operand_class(rhs)),
        // Branch targets are code addresses: normalized to `imm` (rule 1 —
        // they are immediate data embedded in the instruction).
        Inst::Jmp { .. } => NormInst::unary("jmp", Imm),
        Inst::Br { cond, .. } => NormInst::unary(cond.mnemonic(), Imm),
        Inst::Clflush { .. } => NormInst::unary("clflush", Mem),
        Inst::Rdtscp { .. } => NormInst::unary("rdtscp", Reg),
        Inst::Fence { kind } => match kind {
            crate::inst::FenceKind::Lfence => NormInst::nullary("lfence"),
            crate::inst::FenceKind::Mfence => NormInst::nullary("mfence"),
        },
        Inst::VYield => NormInst::nullary("vyield"),
        Inst::Nop => NormInst::nullary("nop"),
        Inst::Halt => NormInst::nullary("halt"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond, MemRef, Operand, Reg};

    #[test]
    fn registers_erased() {
        let a = Inst::MovReg {
            dst: Reg::R1,
            src: Reg::R2,
        };
        let b = Inst::MovReg {
            dst: Reg::R9,
            src: Reg::R14,
        };
        assert_eq!(normalize_inst(&a), normalize_inst(&b));
    }

    #[test]
    fn immediates_erased() {
        let a = Inst::MovImm {
            dst: Reg::R1,
            imm: 1,
        };
        let b = Inst::MovImm {
            dst: Reg::R1,
            imm: 0x7fff_ffff,
        };
        assert_eq!(normalize_inst(&a), normalize_inst(&b));
    }

    #[test]
    fn memory_refs_erased() {
        let a = Inst::Load {
            dst: Reg::R1,
            addr: MemRef::abs(0x1000),
        };
        let b = Inst::Load {
            dst: Reg::R2,
            addr: MemRef::full(Reg::R5, Reg::R6, 8, -24),
        };
        assert_eq!(normalize_inst(&a), normalize_inst(&b));
        assert_eq!(normalize_inst(&a).to_string(), "ld reg, mem");
    }

    #[test]
    fn mnemonics_distinguish() {
        let add = Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R1,
            src: Operand::Imm(1),
        };
        let sub = Inst::Alu {
            op: AluOp::Sub,
            dst: Reg::R1,
            src: Operand::Imm(1),
        };
        assert_ne!(normalize_inst(&add), normalize_inst(&sub));
    }

    #[test]
    fn operand_class_distinguishes_reg_from_imm_source() {
        let ri = Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R1,
            src: Operand::Imm(1),
        };
        let rr = Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R1,
            src: Operand::Reg(Reg::R2),
        };
        assert_ne!(normalize_inst(&ri), normalize_inst(&rr));
    }

    #[test]
    fn branch_targets_are_imm() {
        let j = Inst::Br {
            cond: Cond::Lt,
            target: 17,
        };
        assert_eq!(normalize_inst(&j).to_string(), "blt imm");
    }

    #[test]
    fn parse_roundtrips_display() {
        use crate::inst::{AluOp, Cond, MemRef, Operand, Reg};
        let insts = [
            Inst::MovImm {
                dst: Reg::R1,
                imm: 3,
            },
            Inst::Load {
                dst: Reg::R1,
                addr: MemRef::abs(0),
            },
            Inst::Store {
                src: Reg::R1,
                addr: MemRef::abs(0),
            },
            Inst::Alu {
                op: AluOp::Shr,
                dst: Reg::R1,
                src: Operand::Reg(Reg::R2),
            },
            Inst::Cmp {
                lhs: Reg::R1,
                rhs: Operand::Imm(1),
            },
            Inst::Jmp { target: 0 },
            Inst::Br {
                cond: Cond::Le,
                target: 0,
            },
            Inst::Clflush {
                addr: MemRef::abs(0),
            },
            Inst::Rdtscp { dst: Reg::R0 },
            Inst::VYield,
            Inst::Nop,
            Inst::Halt,
        ];
        for i in &insts {
            let n = normalize_inst(i);
            let parsed: NormInst = n.to_string().parse().expect("parse");
            assert_eq!(parsed, n, "{n}");
        }
        assert!("bogus reg".parse::<NormInst>().is_err());
        assert!("mov reg, imm, mem".parse::<NormInst>().is_err());
    }

    #[test]
    fn display_nullary() {
        assert_eq!(normalize_inst(&Inst::Nop).to_string(), "nop");
        assert_eq!(normalize_inst(&Inst::Halt).to_string(), "halt");
    }
}
