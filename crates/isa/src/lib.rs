//! # sca-isa — the micro-ISA substrate
//!
//! SCAGuard analyses *binary* programs: it builds a CFG, maps hardware
//! performance counter (HPC) events onto basic blocks, and normalizes
//! instruction sequences for similarity comparison. The paper operates on
//! x86 ELF binaries lifted with Angr; this reproduction substitutes a
//! compact RISC-like micro-ISA that expresses everything a cache
//! side-channel attack (and a realistic benign workload) needs:
//!
//! * register/immediate ALU operations,
//! * loads and stores through `base + index*scale + disp` addressing,
//! * conditional and unconditional branches,
//! * `clflush` (line flush), `rdtscp` (timestamp read), and fences,
//! * a `vyield` instruction that hands the (simulated) core to the victim,
//!   standing in for the victim-scheduling gap that real PoCs create with
//!   busy-wait loops.
//!
//! Programs are flat instruction vectors; every instruction occupies
//! [`INST_SIZE`] bytes of a synthetic text segment so instruction
//! *addresses* behave like the ones Intel PT reports.
//!
//! ```
//! use sca_isa::{ProgramBuilder, Reg, MemRef};
//!
//! let mut b = ProgramBuilder::new("demo");
//! b.mov_imm(Reg::R1, 0x1000);
//! b.load(Reg::R2, MemRef::base(Reg::R1));
//! b.halt();
//! let prog = b.build();
//! assert_eq!(prog.len(), 3);
//! ```

pub mod analysis;
pub mod rng;

mod asm;
mod inst;
mod normalize;
mod program;

pub use asm::{assemble, to_asm, ParseAsmError};
pub use inst::{AluOp, Cond, FenceKind, Inst, MemRef, Operand, Reg};
pub use normalize::{normalize_inst, NormInst, NormOperand, ParseNormInstError};
pub use program::{InstTag, Label, Program, ProgramBuilder, TEXT_BASE};

/// Size in bytes of one encoded instruction in the synthetic text segment.
///
/// Every instruction is fixed-width, so the instruction at index `i` of a
/// [`Program`] lives at address `TEXT_BASE + i * INST_SIZE`.
pub const INST_SIZE: u64 = 4;
