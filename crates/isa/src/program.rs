//! Programs, labels, instruction tags, and the assembler/builder.

use std::collections::BTreeMap;
use std::fmt;

use crate::inst::{AluOp, Cond, FenceKind, Inst, MemRef, Operand, Reg};
use crate::INST_SIZE;

/// Base address of the synthetic text segment.
///
/// Chosen to be disjoint from the data regions the attack/benign program
/// generators use (which start at `0x1000_0000`).
pub const TEXT_BASE: u64 = 0x40_0000;

/// A symbolic label produced by [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Semantic tag attached to an instruction by a program generator.
///
/// Tags record which *attack step* an instruction implements; basic blocks
/// containing tagged instructions form the ground truth ("manually
/// identified attack-relevant BBs", #TAB in Table IV) against which
/// SCAGuard's automatic identification is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstTag {
    /// Flush step of a Flush+Reload / Flush+Flush attack.
    Flush,
    /// Reload step (timed re-access over shared memory).
    Reload,
    /// Prime step of Prime+Probe (filling a cache set).
    Prime,
    /// Probe step of Prime+Probe (timed re-access of the primed set).
    Probe,
    /// Eviction-set traversal (Evict+Reload).
    Evict,
    /// Timing measurement (`rdtscp` pairs and the latency arithmetic).
    Time,
    /// Speculative-execution setup (branch training, out-of-bounds access).
    Speculate,
    /// Secret-recovery bookkeeping (threshold compare, result store).
    Recover,
}

/// A complete micro-ISA program plus generator-provided metadata.
///
/// The metadata (`tags`) never influences detection — SCAGuard only sees the
/// instructions and the runtime trace — it is used exclusively as ground
/// truth when scoring attack-relevant-BB identification (Table IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    tags: BTreeMap<usize, InstTag>,
}

impl Program {
    /// Create a program directly from parts. Prefer [`ProgramBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if any branch target is out of range.
    pub fn from_parts(
        name: impl Into<String>,
        insts: Vec<Inst>,
        tags: BTreeMap<usize, InstTag>,
    ) -> Program {
        let n = insts.len();
        for (i, inst) in insts.iter().enumerate() {
            if let Some(t) = inst.branch_target() {
                assert!(t < n, "instruction {i} branches to out-of-range {t}");
            }
        }
        Program {
            name: name.into(),
            insts,
            tags,
        }
    }

    /// The program's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions, in address order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at index `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Inst> {
        self.insts.get(i)
    }

    /// The text-segment address of the instruction at index `i`.
    pub fn addr_of(&self, i: usize) -> u64 {
        TEXT_BASE + i as u64 * INST_SIZE
    }

    /// The instruction index for text-segment address `addr`, if it falls in
    /// this program.
    pub fn index_of_addr(&self, addr: u64) -> Option<usize> {
        if addr < TEXT_BASE || !(addr - TEXT_BASE).is_multiple_of(INST_SIZE) {
            return None;
        }
        let i = ((addr - TEXT_BASE) / INST_SIZE) as usize;
        (i < self.insts.len()).then_some(i)
    }

    /// The semantic tag on instruction `i`, if any.
    pub fn tag(&self, i: usize) -> Option<InstTag> {
        self.tags.get(&i).copied()
    }

    /// All `(index, tag)` pairs in address order.
    pub fn tags(&self) -> impl Iterator<Item = (usize, InstTag)> + '_ {
        self.tags.iter().map(|(&i, &t)| (i, t))
    }

    /// Whether any instruction carries an attack-step tag.
    pub fn has_attack_tags(&self) -> bool {
        !self.tags.is_empty()
    }

    /// Render the program as annotated assembly text.
    pub fn disasm(&self) -> String {
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let tag = self
                .tags
                .get(&i)
                .map(|t| format!("  ; {t:?}"))
                .unwrap_or_default();
            out.push_str(&format!("{:#08x}: {inst}{tag}\n", self.addr_of(i)));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} insts)", self.name, self.insts.len())
    }
}

/// Incremental assembler for [`Program`]s with forward-label support.
///
/// ```
/// use sca_isa::{ProgramBuilder, Reg, Cond};
///
/// let mut b = ProgramBuilder::new("count-to-ten");
/// b.mov_imm(Reg::R0, 0);
/// let top = b.here();
/// b.alu_imm(sca_isa::AluOp::Add, Reg::R0, 1);
/// b.cmp_imm(Reg::R0, 10);
/// b.br(Cond::Lt, top);
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    tags: BTreeMap<usize, InstTag>,
    /// label id -> resolved instruction index
    labels: Vec<Option<usize>>,
    /// (instruction index, label id) pairs awaiting resolution
    fixups: Vec<(usize, usize)>,
    pending_tag: Option<InstTag>,
}

impl ProgramBuilder {
    /// Start building a program called `name`.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            tags: BTreeMap::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            pending_tag: None,
        }
    }

    /// Allocate an unbound label for forward references.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice at instruction {}",
            self.insts.len()
        );
        self.labels[label.0] = Some(self.insts.len());
    }

    /// A label bound to the current position (for backward branches).
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Tag the *next* emitted instruction with `tag`.
    pub fn tag_next(&mut self, tag: InstTag) -> &mut Self {
        self.pending_tag = Some(tag);
        self
    }

    /// Run `f` with every instruction it emits tagged `tag`.
    pub fn tagged(&mut self, tag: InstTag, f: impl FnOnce(&mut Self)) {
        let start = self.insts.len();
        f(self);
        for i in start..self.insts.len() {
            self.tags.entry(i).or_insert(tag);
        }
    }

    /// Append a raw instruction; returns its index.
    pub fn push(&mut self, inst: Inst) -> usize {
        let i = self.insts.len();
        self.insts.push(inst);
        if let Some(tag) = self.pending_tag.take() {
            self.tags.insert(i, tag);
        }
        i
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instruction has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    // ---- instruction helpers ------------------------------------------

    /// `mov dst, imm`
    pub fn mov_imm(&mut self, dst: Reg, imm: i64) -> usize {
        self.push(Inst::MovImm { dst, imm })
    }

    /// `mov dst, src`
    pub fn mov_reg(&mut self, dst: Reg, src: Reg) -> usize {
        self.push(Inst::MovReg { dst, src })
    }

    /// `ld dst, addr`
    pub fn load(&mut self, dst: Reg, addr: MemRef) -> usize {
        self.push(Inst::Load { dst, addr })
    }

    /// `st addr, src`
    pub fn store(&mut self, src: Reg, addr: MemRef) -> usize {
        self.push(Inst::Store { src, addr })
    }

    /// `op dst, src` with a register source.
    pub fn alu(&mut self, op: AluOp, dst: Reg, src: Reg) -> usize {
        self.push(Inst::Alu {
            op,
            dst,
            src: Operand::Reg(src),
        })
    }

    /// `op dst, imm` with an immediate source.
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, imm: i64) -> usize {
        self.push(Inst::Alu {
            op,
            dst,
            src: Operand::Imm(imm),
        })
    }

    /// `cmp lhs, rhs`
    pub fn cmp(&mut self, lhs: Reg, rhs: Reg) -> usize {
        self.push(Inst::Cmp {
            lhs,
            rhs: Operand::Reg(rhs),
        })
    }

    /// `cmp lhs, imm`
    pub fn cmp_imm(&mut self, lhs: Reg, imm: i64) -> usize {
        self.push(Inst::Cmp {
            lhs,
            rhs: Operand::Imm(imm),
        })
    }

    /// `jmp label`
    pub fn jmp(&mut self, label: Label) -> usize {
        let i = self.push(Inst::Jmp { target: usize::MAX });
        self.fixups.push((i, label.0));
        i
    }

    /// Conditional branch to `label`.
    pub fn br(&mut self, cond: Cond, label: Label) -> usize {
        let i = self.push(Inst::Br {
            cond,
            target: usize::MAX,
        });
        self.fixups.push((i, label.0));
        i
    }

    /// `clflush addr`
    pub fn clflush(&mut self, addr: MemRef) -> usize {
        self.push(Inst::Clflush { addr })
    }

    /// `rdtscp dst`
    pub fn rdtscp(&mut self, dst: Reg) -> usize {
        self.push(Inst::Rdtscp { dst })
    }

    /// `lfence`
    pub fn lfence(&mut self) -> usize {
        self.push(Inst::Fence {
            kind: FenceKind::Lfence,
        })
    }

    /// `mfence`
    pub fn mfence(&mut self) -> usize {
        self.push(Inst::Fence {
            kind: FenceKind::Mfence,
        })
    }

    /// `vyield` — hand the core to the victim.
    pub fn vyield(&mut self) -> usize {
        self.push(Inst::VYield)
    }

    /// `nop`
    pub fn nop(&mut self) -> usize {
        self.push(Inst::Nop)
    }

    /// `halt`
    pub fn halt(&mut self) -> usize {
        self.push(Inst::Halt)
    }

    /// Resolve labels and produce the final [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> Program {
        for (inst_idx, label_id) in self.fixups.drain(..) {
            let target = self.labels[label_id]
                .unwrap_or_else(|| panic!("label {label_id} referenced but never bound"));
            self.insts[inst_idx] = self.insts[inst_idx].map_target(|_| target);
        }
        Program::from_parts(self.name, self.insts, self.tags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new("t");
        let end = b.new_label();
        b.mov_imm(Reg::R0, 0);
        let top = b.here();
        b.alu_imm(AluOp::Add, Reg::R0, 1);
        b.cmp_imm(Reg::R0, 3);
        b.br(Cond::Ge, end);
        b.jmp(top);
        b.bind(end);
        b.halt();
        let p = b.build();
        assert_eq!(p.get(3).unwrap().branch_target(), Some(5));
        assert_eq!(p.get(4).unwrap().branch_target(), Some(1));
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.new_label();
        b.jmp(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_target_panics() {
        let _ = Program::from_parts("t", vec![Inst::Jmp { target: 5 }], BTreeMap::new());
    }

    #[test]
    fn addr_index_roundtrip() {
        let mut b = ProgramBuilder::new("t");
        for _ in 0..10 {
            b.nop();
        }
        b.halt();
        let p = b.build();
        for i in 0..p.len() {
            assert_eq!(p.index_of_addr(p.addr_of(i)), Some(i));
        }
        assert_eq!(p.index_of_addr(TEXT_BASE + 1), None);
        assert_eq!(p.index_of_addr(TEXT_BASE - INST_SIZE), None);
        assert_eq!(p.index_of_addr(p.addr_of(p.len())), None);
    }

    #[test]
    fn tags_attach_to_next_instruction_and_blocks() {
        let mut b = ProgramBuilder::new("t");
        b.tag_next(InstTag::Flush);
        b.clflush(MemRef::abs(0x1000));
        b.tagged(InstTag::Reload, |b| {
            b.load(Reg::R1, MemRef::abs(0x1000));
            b.rdtscp(Reg::R2);
        });
        b.halt();
        let p = b.build();
        assert_eq!(p.tag(0), Some(InstTag::Flush));
        assert_eq!(p.tag(1), Some(InstTag::Reload));
        assert_eq!(p.tag(2), Some(InstTag::Reload));
        assert_eq!(p.tag(3), None);
        assert!(p.has_attack_tags());
    }

    #[test]
    fn disasm_contains_every_instruction() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 7);
        b.halt();
        let p = b.build();
        let d = p.disasm();
        assert!(d.contains("mov r0, 0x7"));
        assert!(d.contains("halt"));
    }
}
