//! Instruction and operand definitions for the micro-ISA.

use std::fmt;

/// A general-purpose register.
///
/// Sixteen registers, mirroring the width of the x86-64 GPR file the paper's
/// PoCs use. `R0` conventionally holds return values; there is no stack in
/// the micro-ISA so no register is reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The register file index of this register (0..16).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The register with file index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn from_index(i: usize) -> Reg {
        Reg::ALL[i]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// A memory reference: `[base + index * scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4, or 8 by convention).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
}

impl MemRef {
    /// A reference through a single base register: `[base]`.
    pub fn base(base: Reg) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp: 0,
        }
    }

    /// An absolute reference: `[disp]`.
    pub fn abs(disp: i64) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[base + disp]`.
    pub fn base_disp(base: Reg, disp: i64) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[base + index * scale]`.
    pub fn base_index(base: Reg, index: Reg, scale: u8) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp: 0,
        }
    }

    /// `[base + index * scale + disp]`.
    pub fn full(base: Reg, index: Reg, scale: u8, disp: i64) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }

    /// Registers read when computing this reference's effective address.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.iter().chain(self.index.iter()).copied()
    }
}

/// Format an immediate as signed hexadecimal (`0x2a`, `-0x10`), the form
/// the assembler parses back.
pub(crate) fn fmt_imm(v: i64) -> String {
    if v < 0 {
        format!("-{:#x}", v.unsigned_abs())
    } else {
        format!("{v:#x}")
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            first = false;
        }
        if self.disp != 0 || first {
            if !first && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{}", fmt_imm(self.disp))?;
        }
        write!(f, "]")
    }
}

/// A source operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{}", fmt_imm(*i)),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Operand {
        Operand::Imm(i)
    }
}

/// Arithmetic/logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
}

impl AluOp {
    /// The assembler mnemonic of this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        }
    }

    /// Apply this operation to two 64-bit values.
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::Mul => lhs.wrapping_mul(rhs),
            AluOp::And => lhs & rhs,
            AluOp::Or => lhs | rhs,
            AluOp::Xor => lhs ^ rhs,
            AluOp::Shl => lhs.wrapping_shl((rhs & 63) as u32),
            AluOp::Shr => lhs.wrapping_shr((rhs & 63) as u32),
        }
    }
}

/// Branch conditions, evaluated against the flags set by the last `cmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (`lhs == rhs`).
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl Cond {
    /// The branch mnemonic (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ge => "bge",
        }
    }

    /// Evaluate the condition for compared values `lhs` and `rhs`.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Le => lhs <= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Ge => lhs >= rhs,
        }
    }

    /// The negation of this condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

/// Memory fence kinds. In the simulated CPU, `Lfence` additionally acts as a
/// speculation barrier, mirroring its use in Spectre PoCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// Load fence / speculation barrier.
    Lfence,
    /// Full memory fence.
    Mfence,
}

/// One micro-ISA instruction.
///
/// Branch targets are *instruction indices* into the owning
/// [`Program`](crate::Program); the assembler resolves symbolic labels to
/// indices at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst <- imm`
    MovImm { dst: Reg, imm: i64 },
    /// `dst <- src`
    MovReg { dst: Reg, src: Reg },
    /// `dst <- mem[ea(addr)]`
    Load { dst: Reg, addr: MemRef },
    /// `mem[ea(addr)] <- src`
    Store { src: Reg, addr: MemRef },
    /// `dst <- dst op src`
    Alu { op: AluOp, dst: Reg, src: Operand },
    /// Compare `lhs` with `rhs`, setting the flags used by `Br`.
    Cmp { lhs: Reg, rhs: Operand },
    /// Unconditional jump to instruction index `target`.
    Jmp { target: usize },
    /// Conditional branch to instruction index `target`.
    Br { cond: Cond, target: usize },
    /// Flush the cache line containing `ea(addr)` from the whole hierarchy.
    Clflush { addr: MemRef },
    /// Read the timestamp counter into `dst` (serializing, like `rdtscp`).
    Rdtscp { dst: Reg },
    /// Memory fence.
    Fence { kind: FenceKind },
    /// Yield to the victim process (models the victim-scheduling window
    /// a real attacker creates with `sched_yield`/busy waiting).
    VYield,
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

impl Inst {
    /// Whether this instruction ends a basic block (branch, jump, or halt).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jmp { .. } | Inst::Br { .. } | Inst::Halt)
    }

    /// The branch target, if this is a `Jmp` or `Br`.
    pub fn branch_target(&self) -> Option<usize> {
        match self {
            Inst::Jmp { target } | Inst::Br { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Whether control can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(self, Inst::Jmp { .. } | Inst::Halt)
    }

    /// Whether this instruction touches the data cache (load, store, flush).
    pub fn is_memory_op(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Clflush { .. }
        )
    }

    /// Rewrite branch targets with `f`; non-branch instructions are returned
    /// unchanged. Used by program transformers (mutation, obfuscation).
    pub fn map_target(self, f: impl FnOnce(usize) -> usize) -> Inst {
        match self {
            Inst::Jmp { target } => Inst::Jmp { target: f(target) },
            Inst::Br { cond, target } => Inst::Br {
                cond,
                target: f(target),
            },
            other => other,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::MovImm { dst, imm } => write!(f, "mov {dst}, {}", fmt_imm(*imm)),
            Inst::MovReg { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::Load { dst, addr } => write!(f, "ld {dst}, {addr}"),
            Inst::Store { src, addr } => write!(f, "st {addr}, {src}"),
            Inst::Alu { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Inst::Cmp { lhs, rhs } => write!(f, "cmp {lhs}, {rhs}"),
            Inst::Jmp { target } => write!(f, "jmp @{target}"),
            Inst::Br { cond, target } => write!(f, "{} @{target}", cond.mnemonic()),
            Inst::Clflush { addr } => write!(f, "clflush {addr}"),
            Inst::Rdtscp { dst } => write!(f, "rdtscp {dst}"),
            Inst::Fence { kind } => match kind {
                FenceKind::Lfence => write!(f, "lfence"),
                FenceKind::Mfence => write!(f, "mfence"),
            },
            Inst::VYield => write!(f, "vyield"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), *r);
        }
    }

    #[test]
    fn alu_apply_matches_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 5), 15);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        // shift modulo 64
        assert_eq!(AluOp::Shl.apply(1, 64), 1);
    }

    #[test]
    fn cond_eval_and_negate() {
        let cases = [(Cond::Eq, 1u64, 1u64, true), (Cond::Ne, 1, 1, false)];
        for (c, l, r, expect) in cases {
            assert_eq!(c.eval(l, r), expect);
            assert_eq!(c.negate().eval(l, r), !expect);
        }
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            for (l, r) in [(0u64, 1u64), (1, 0), (7, 7)] {
                assert_eq!(c.negate().eval(l, r), !c.eval(l, r), "{c:?} {l} {r}");
            }
        }
    }

    #[test]
    fn terminator_classification() {
        assert!(Inst::Halt.is_terminator());
        assert!(Inst::Jmp { target: 0 }.is_terminator());
        assert!(Inst::Br {
            cond: Cond::Eq,
            target: 0
        }
        .is_terminator());
        assert!(!Inst::Nop.is_terminator());
        assert!(Inst::Br {
            cond: Cond::Eq,
            target: 0
        }
        .falls_through());
        assert!(!Inst::Jmp { target: 0 }.falls_through());
    }

    #[test]
    fn display_forms() {
        let i = Inst::Load {
            dst: Reg::R2,
            addr: MemRef::full(Reg::R1, Reg::R3, 8, 0x40),
        };
        assert_eq!(i.to_string(), "ld r2, [r1+r3*8+0x40]");
        let j = Inst::Store {
            src: Reg::R0,
            addr: MemRef::abs(0x2000),
        };
        assert_eq!(j.to_string(), "st [0x2000], r0");
    }

    #[test]
    fn map_target_rewrites_branches_only() {
        let j = Inst::Jmp { target: 3 }.map_target(|t| t + 10);
        assert_eq!(j.branch_target(), Some(13));
        let n = Inst::Nop.map_target(|t| t + 10);
        assert_eq!(n, Inst::Nop);
    }
}
