//! Static program analysis utilities: reachability, instruction
//! statistics, and memory-footprint estimation.
//!
//! These serve the `scaguard asm` CLI (sanity-checking hand-written
//! programs) and the dataset generators' self-checks; none of them are
//! part of the detection pipeline itself.

use std::collections::BTreeSet;
use std::fmt;

use crate::inst::{Inst, MemRef};
use crate::program::Program;

/// Summary statistics of a program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Total instructions.
    pub instructions: usize,
    /// Memory-touching instructions (loads, stores, flushes).
    pub memory_ops: usize,
    /// Control-transfer instructions (jumps and branches).
    pub branches: usize,
    /// Timestamp reads.
    pub rdtscps: usize,
    /// `clflush` instructions.
    pub flushes: usize,
    /// Victim-yield points.
    pub yields: usize,
    /// Instructions unreachable from the entry.
    pub unreachable: usize,
    /// Distinct absolute memory regions referenced (see
    /// [`absolute_footprint`]).
    pub absolute_regions: usize,
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts ({} mem, {} branch, {} rdtscp, {} flush, {} yield); {} unreachable; {} regions",
            self.instructions,
            self.memory_ops,
            self.branches,
            self.rdtscps,
            self.flushes,
            self.yields,
            self.unreachable,
            self.absolute_regions
        )
    }
}

/// Instruction indices reachable from the entry by following fall-through
/// and branch edges.
pub fn reachable(program: &Program) -> BTreeSet<usize> {
    let mut seen = BTreeSet::new();
    if program.is_empty() {
        return seen;
    }
    let mut stack = vec![0usize];
    while let Some(i) = stack.pop() {
        if i >= program.len() || !seen.insert(i) {
            continue;
        }
        let inst = &program.insts()[i];
        if let Some(t) = inst.branch_target() {
            stack.push(t);
        }
        if inst.falls_through() {
            stack.push(i + 1);
        }
    }
    seen
}

/// Distinct 64 KiB-aligned absolute memory regions a program references
/// through absolute (`base == None`) memory operands — a rough footprint
/// that flags typos in hand-written address constants.
pub fn absolute_footprint(program: &Program) -> BTreeSet<u64> {
    const REGION: u64 = 1 << 16;
    let mut out = BTreeSet::new();
    let note = |m: &MemRef, out: &mut BTreeSet<u64>| {
        if m.base.is_none() && m.index.is_none() {
            out.insert((m.disp as u64) / REGION * REGION);
        }
    };
    for inst in program.insts() {
        match inst {
            Inst::Load { addr, .. } | Inst::Store { addr, .. } | Inst::Clflush { addr } => {
                note(addr, &mut out)
            }
            _ => {}
        }
    }
    out
}

/// Compute [`ProgramStats`] for a program.
pub fn analyze(program: &Program) -> ProgramStats {
    let reach = reachable(program);
    let mut stats = ProgramStats {
        instructions: program.len(),
        unreachable: program.len() - reach.len(),
        absolute_regions: absolute_footprint(program).len(),
        ..ProgramStats::default()
    };
    for inst in program.insts() {
        if inst.is_memory_op() {
            stats.memory_ops += 1;
        }
        match inst {
            Inst::Jmp { .. } | Inst::Br { .. } => stats.branches += 1,
            Inst::Rdtscp { .. } => stats.rdtscps += 1,
            Inst::Clflush { .. } => stats.flushes += 1,
            Inst::VYield => stats.yields += 1,
            _ => {}
        }
    }
    stats
}

/// Registers that may be read before any write on some path from the
/// entry — the classic hand-written-assembly bug (all registers start at
/// zero in the simulator, so this is a lint, not an error).
///
/// Conservative forward dataflow: a register counts as initialized at a
/// program point only if it is written on *every* path reaching it.
pub fn possibly_uninitialized_reads(program: &Program) -> BTreeSet<crate::inst::Reg> {
    use crate::inst::{Operand, Reg};
    let n = program.len();
    if n == 0 {
        return BTreeSet::new();
    }
    // bitmask of definitely-initialized registers at entry of each inst
    const UNVISITED: u32 = u32::MAX;
    let mut init_in: Vec<u32> = vec![UNVISITED; n];
    let mut flagged: BTreeSet<Reg> = BTreeSet::new();
    let reads_of = |inst: &Inst| -> Vec<Reg> {
        let mut out = Vec::new();
        let mem = |m: &MemRef, out: &mut Vec<Reg>| out.extend(m.regs());
        match inst {
            Inst::MovReg { src, .. } => out.push(*src),
            Inst::Load { addr, .. } => mem(addr, &mut out),
            Inst::Store { src, addr } => {
                out.push(*src);
                mem(addr, &mut out);
            }
            Inst::Alu { dst, src, .. } => {
                out.push(*dst);
                if let Operand::Reg(r) = src {
                    out.push(*r);
                }
            }
            Inst::Cmp { lhs, rhs } => {
                out.push(*lhs);
                if let Operand::Reg(r) = rhs {
                    out.push(*r);
                }
            }
            Inst::Clflush { addr } => mem(addr, &mut out),
            _ => {}
        }
        out
    };
    let writes_of = |inst: &Inst| -> Option<Reg> {
        match inst {
            Inst::MovImm { dst, .. }
            | Inst::MovReg { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Alu { dst, .. }
            | Inst::Rdtscp { dst } => Some(*dst),
            _ => None,
        }
    };
    // worklist dataflow (meet = intersection)
    let mut work = vec![0usize];
    init_in[0] = 0;
    while let Some(i) = work.pop() {
        let inst = &program.insts()[i];
        let mask = init_in[i];
        for r in reads_of(inst) {
            if mask & (1 << r.index()) == 0 {
                flagged.insert(r);
            }
        }
        let out_mask = match writes_of(inst) {
            Some(r) => mask | (1 << r.index()),
            None => mask,
        };
        let push = |t: usize, init_in: &mut Vec<u32>, work: &mut Vec<usize>| {
            if t >= n {
                return;
            }
            let merged = if init_in[t] == UNVISITED {
                out_mask
            } else {
                init_in[t] & out_mask
            };
            if merged != init_in[t] {
                init_in[t] = merged;
                work.push(t);
            }
        };
        if let Some(t) = inst.branch_target() {
            push(t, &mut init_in, &mut work);
        }
        if inst.falls_through() {
            push(i + 1, &mut init_in, &mut work);
        }
    }
    flagged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, Reg};
    use crate::program::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 0x1000);
        b.load(Reg::R2, MemRef::abs(0x1_0000));
        b.clflush(MemRef::abs(0x2_0000));
        b.rdtscp(Reg::R3);
        b.vyield();
        b.cmp_imm(Reg::R2, 0);
        let l = b.new_label();
        b.br(Cond::Eq, l);
        b.bind(l);
        b.halt();
        b.nop(); // unreachable tail
        b.build()
    }

    #[test]
    fn stats_count_instruction_classes() {
        let s = analyze(&sample());
        assert_eq!(s.instructions, 9);
        assert_eq!(s.memory_ops, 2);
        assert_eq!(s.branches, 1);
        assert_eq!(s.rdtscps, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.yields, 1);
        assert_eq!(s.unreachable, 1);
        assert_eq!(s.absolute_regions, 2);
        assert!(s.to_string().contains("9 insts"));
    }

    #[test]
    fn reachability_follows_both_branch_edges() {
        let mut b = ProgramBuilder::new("t");
        b.cmp_imm(Reg::R0, 0);
        let t = b.new_label();
        b.br(Cond::Eq, t);
        b.nop(); // fall-through arm
        b.bind(t);
        b.halt();
        let p = b.build();
        assert_eq!(reachable(&p).len(), p.len());
    }

    #[test]
    fn code_after_unconditional_jump_is_unreachable() {
        let mut b = ProgramBuilder::new("t");
        let end = b.new_label();
        b.jmp(end);
        b.nop();
        b.nop();
        b.bind(end);
        b.halt();
        let p = b.build();
        let r = reachable(&p);
        assert!(!r.contains(&1));
        assert!(!r.contains(&2));
        assert_eq!(analyze(&p).unreachable, 2);
    }

    #[test]
    fn uninitialized_read_is_flagged() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 1);
        b.alu(crate::inst::AluOp::Add, Reg::R1, Reg::R2); // R2 never written
        b.halt();
        let flagged = possibly_uninitialized_reads(&b.build());
        assert!(flagged.contains(&Reg::R2));
        assert!(!flagged.contains(&Reg::R1));
    }

    #[test]
    fn initialized_on_all_paths_is_clean() {
        let mut b = ProgramBuilder::new("t");
        b.cmp_imm(Reg::R0, 0);
        let other = b.new_label();
        let join = b.new_label();
        b.br(Cond::Eq, other);
        b.mov_imm(Reg::R1, 1);
        b.jmp(join);
        b.bind(other);
        b.mov_imm(Reg::R1, 2);
        b.bind(join);
        b.mov_reg(Reg::R2, Reg::R1); // R1 written on both arms
        b.halt();
        let flagged = possibly_uninitialized_reads(&b.build());
        assert!(!flagged.contains(&Reg::R1), "{flagged:?}");
    }

    #[test]
    fn one_armed_initialization_is_flagged() {
        let mut b = ProgramBuilder::new("t");
        b.cmp_imm(Reg::R0, 0);
        let skip = b.new_label();
        b.br(Cond::Eq, skip);
        b.mov_imm(Reg::R1, 1); // only on one arm
        b.bind(skip);
        b.mov_reg(Reg::R2, Reg::R1);
        b.halt();
        let flagged = possibly_uninitialized_reads(&b.build());
        assert!(flagged.contains(&Reg::R1));
    }

    #[test]
    fn footprint_merges_same_region() {
        let mut b = ProgramBuilder::new("t");
        b.load(Reg::R1, MemRef::abs(0x1_0000));
        b.load(Reg::R2, MemRef::abs(0x1_0040));
        b.store(Reg::R1, MemRef::abs(0x9_0000));
        b.halt();
        let p = b.build();
        assert_eq!(absolute_footprint(&p).len(), 2);
    }
}
