//! Seeded, std-only pseudo-random numbers.
//!
//! The dataset generators, mutators, and property tests all need cheap
//! deterministic randomness, but the build must work fully offline, so no
//! external RNG crate is available. [`SmallRng`] is a splitmix64 stream —
//! excellent statistical quality for generator/test workloads, one `u64`
//! of state, and a stable output sequence per seed (results are
//! reproducible across runs and platforms).
//!
//! The surface mirrors the subset of `rand` the workspace used:
//! `seed_from_u64`, `gen`, `gen_range`, `gen_bool`, plus a [`Shuffle`]
//! extension trait for slices.
//!
//! ```
//! use sca_isa::rng::{SmallRng, Shuffle};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let k = rng.gen_range(8..32u64);
//! assert!((8..32).contains(&k));
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);
//! ```

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable PRNG (splitmix64). Not cryptographically
/// secure — for dataset generation and tests only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Create an RNG whose output stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly random value of `T` (integers: full range).
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform index below `bound` via Lemire's multiply-shift.
    fn index_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A random element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index_below(slice.len() as u64) as usize])
        }
    }
}

/// Types producible uniformly from raw RNG bits.
pub trait FromRng: Sized {
    /// Draw one uniform value.
    fn from_rng(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_from_rng {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_from_rng!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as `gen_range` endpoints.
pub trait RangeInt: Copy + PartialOrd {
    /// `high - low` as a width-independent span (assumes `low <= high`).
    fn span(low: Self, high: Self) -> u64;
    /// `low + off` (assumes the result stays in range).
    fn offset(low: Self, off: u64) -> Self;
}

macro_rules! impl_range_int_unsigned {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn span(low: $t, high: $t) -> u64 {
                (high - low) as u64
            }
            fn offset(low: $t, off: u64) -> $t {
                low + off as $t
            }
        }
    )*};
}

macro_rules! impl_range_int_signed {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn span(low: $t, high: $t) -> u64 {
                (high as i128 - low as i128) as u64
            }
            fn offset(low: $t, off: u64) -> $t {
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_int_unsigned!(u8, u16, u32, u64, usize);
impl_range_int_signed!(i8, i16, i32, i64, isize);

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

impl<T: RangeInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut SmallRng) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        let span = T::span(self.start, self.end);
        T::offset(self.start, rng.index_below(span))
    }
}

impl<T: RangeInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut SmallRng) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range on an empty range");
        let span = T::span(low, high);
        if span == u64::MAX {
            return T::offset(low, rng.next_u64());
        }
        T::offset(low, rng.index_below(span + 1))
    }
}

/// Fisher–Yates shuffling for slices, mirroring `rand`'s `SliceRandom`
/// call shape (`slice.shuffle(&mut rng)`).
pub trait Shuffle {
    /// Uniformly permute the elements in place.
    fn shuffle(&mut self, rng: &mut SmallRng);
}

impl<T> Shuffle for [T] {
    fn shuffle(&mut self, rng: &mut SmallRng) {
        for i in (1..self.len()).rev() {
            let j = rng.index_below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_deterministic() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(10);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_both_endpoints_inclusive() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..=3usize)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = SmallRng::seed_from_u64(6);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(rng.choose(&v).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }
}
