//! A textual assembler for the micro-ISA.
//!
//! The syntax is the same as [`Program::disasm`] output, minus the address
//! prefixes, plus labels — so disassembly round-trips and users can write
//! programs by hand:
//!
//! ```text
//! ; classic flush+reload core
//!         mov r1, 0x10000000
//! loop:   clflush [r1]
//!         vyield
//!         rdtscp r2
//!         ld r3, [r1]
//!         rdtscp r4
//!         sub r4, r2
//!         cmp r4, 80
//!         bge loop
//!         halt
//! ```
//!
//! Grammar per line: `[label:] [instruction] [; comment]`. Operands:
//! registers `r0`–`r15`, immediates (decimal or `0x` hex, optionally
//! negative), memory references `[base + index*scale + disp]` with any
//! subset of the three parts, and label names as branch targets.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::inst::{AluOp, Cond, FenceKind, Inst, MemRef, Operand, Reg};
use crate::program::Program;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseAsmError> {
    let rest = tok
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    let idx: usize = rest
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    if idx >= 16 {
        return Err(err(line, format!("register index out of range: `{tok}`")));
    }
    Ok(Reg::from_index(idx))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseAsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let magnitude: u128 = if let Some(hex) = body.strip_prefix("0x") {
        u128::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    let signed = if neg {
        -(i128::try_from(magnitude)
            .map_err(|_| err(line, format!("immediate overflow `{tok}`")))?)
    } else {
        i128::try_from(magnitude).map_err(|_| err(line, format!("immediate overflow `{tok}`")))?
    };
    i64::try_from(signed).map_err(|_| err(line, format!("immediate overflow `{tok}`")))
}

/// Parse `[base + index*scale + disp]` with any subset of parts present.
fn parse_mem(tok: &str, line: usize) -> Result<MemRef, ParseAsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected memory reference, got `{tok}`")))?;
    let mut m = MemRef {
        base: None,
        index: None,
        scale: 1,
        disp: 0,
    };
    // split on '+' but keep '-' attached to the following term
    let normalized = inner.replace('-', "+-").replace(' ', "");
    for term in normalized.split('+').filter(|t| !t.is_empty()) {
        if let Some((reg, scale)) = term.split_once('*') {
            if m.index.is_some() {
                return Err(err(line, "duplicate index register"));
            }
            m.index = Some(parse_reg(reg, line)?);
            let s = parse_imm(scale, line)?;
            m.scale = u8::try_from(s).map_err(|_| err(line, format!("bad scale `{scale}`")))?;
        } else if term.starts_with('r') {
            if m.base.is_none() {
                m.base = Some(parse_reg(term, line)?);
            } else if m.index.is_none() {
                m.index = Some(parse_reg(term, line)?);
            } else {
                return Err(err(line, "too many registers in memory reference"));
            }
        } else {
            m.disp = m
                .disp
                .checked_add(parse_imm(term, line)?)
                .ok_or_else(|| err(line, "displacement overflow"))?;
        }
    }
    Ok(m)
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseAsmError> {
    if tok.starts_with('r') && !tok.starts_with("r0x") {
        Ok(Operand::Reg(parse_reg(tok, line)?))
    } else {
        Ok(Operand::Imm(parse_imm(tok, line)?))
    }
}

fn cond_of(mnemonic: &str) -> Option<Cond> {
    Some(match mnemonic {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "ble" => Cond::Le,
        "bgt" => Cond::Gt,
        "bge" => Cond::Ge,
        _ => return None,
    })
}

fn alu_of(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        _ => return None,
    })
}

/// A pending branch awaiting label resolution.
enum Pending {
    Jmp(String, usize),
    Br(Cond, String, usize),
}

/// Assemble a textual program.
///
/// # Errors
///
/// Returns a [`ParseAsmError`] carrying the offending source line for
/// syntax errors, unknown mnemonics, malformed operands, duplicate or
/// undefined labels.
///
/// ```
/// use sca_isa::assemble;
///
/// # fn main() -> Result<(), sca_isa::ParseAsmError> {
/// let p = assemble(
///     "demo",
///     "mov r1, 0x1000\nld r2, [r1]\nhalt\n",
/// )?;
/// assert_eq!(p.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn assemble(name: &str, source: &str) -> Result<Program, ParseAsmError> {
    let mut insts: Vec<Inst> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut pendings: Vec<(usize, Pending)> = Vec::new();

    for (line_idx, raw) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let mut text = raw;
        if let Some(i) = text.find(';') {
            text = &text[..i];
        }
        let mut text = text.trim();
        // labels (possibly several on one line)
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break; // not a label — let operand parsing report it
            }
            if labels.insert(label.to_string(), insts.len()).is_some() {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let operands: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let arity = |n: usize| -> Result<(), ParseAsmError> {
            if operands.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("`{mnemonic}` takes {n} operand(s), got {}", operands.len()),
                ))
            }
        };

        let inst = match mnemonic {
            "mov" => {
                arity(2)?;
                let dst = parse_reg(operands[0], line_no)?;
                match parse_operand(operands[1], line_no)? {
                    Operand::Reg(src) => Inst::MovReg { dst, src },
                    Operand::Imm(imm) => Inst::MovImm { dst, imm },
                }
            }
            "ld" => {
                arity(2)?;
                Inst::Load {
                    dst: parse_reg(operands[0], line_no)?,
                    addr: parse_mem(operands[1], line_no)?,
                }
            }
            "st" => {
                arity(2)?;
                Inst::Store {
                    addr: parse_mem(operands[0], line_no)?,
                    src: parse_reg(operands[1], line_no)?,
                }
            }
            "cmp" => {
                arity(2)?;
                Inst::Cmp {
                    lhs: parse_reg(operands[0], line_no)?,
                    rhs: parse_operand(operands[1], line_no)?,
                }
            }
            "clflush" => {
                arity(1)?;
                Inst::Clflush {
                    addr: parse_mem(operands[0], line_no)?,
                }
            }
            "rdtscp" => {
                arity(1)?;
                Inst::Rdtscp {
                    dst: parse_reg(operands[0], line_no)?,
                }
            }
            "lfence" => {
                arity(0)?;
                Inst::Fence {
                    kind: FenceKind::Lfence,
                }
            }
            "mfence" => {
                arity(0)?;
                Inst::Fence {
                    kind: FenceKind::Mfence,
                }
            }
            "vyield" => {
                arity(0)?;
                Inst::VYield
            }
            "nop" => {
                arity(0)?;
                Inst::Nop
            }
            "halt" => {
                arity(0)?;
                Inst::Halt
            }
            "jmp" => {
                arity(1)?;
                pendings.push((insts.len(), Pending::Jmp(label_token(operands[0]), line_no)));
                Inst::Jmp { target: 0 }
            }
            m => {
                if let Some(cond) = cond_of(m) {
                    arity(1)?;
                    pendings.push((
                        insts.len(),
                        Pending::Br(cond, label_token(operands[0]), line_no),
                    ));
                    Inst::Br { cond, target: 0 }
                } else if let Some(op) = alu_of(m) {
                    arity(2)?;
                    Inst::Alu {
                        op,
                        dst: parse_reg(operands[0], line_no)?,
                        src: parse_operand(operands[1], line_no)?,
                    }
                } else {
                    return Err(err(line_no, format!("unknown mnemonic `{m}`")));
                }
            }
        };
        insts.push(inst);
    }

    // resolve labels
    for (idx, pending) in pendings {
        let (label, cond, line_no) = match &pending {
            Pending::Jmp(l, n) => (l, None, *n),
            Pending::Br(c, l, n) => (l, Some(*c), *n),
        };
        // `@N` form (disassembler output) targets an absolute index
        let target = if let Some(n) = label.strip_prefix('@') {
            n.parse::<usize>()
                .map_err(|_| err(line_no, format!("bad target `{label}`")))?
        } else {
            *labels
                .get(label.as_str())
                .ok_or_else(|| err(line_no, format!("undefined label `{label}`")))?
        };
        if target >= insts.len() {
            return Err(err(line_no, format!("target `{label}` out of range")));
        }
        insts[idx] = match cond {
            None => Inst::Jmp { target },
            Some(cond) => Inst::Br { cond, target },
        };
    }

    if insts.is_empty() {
        return Err(err(0, "empty program"));
    }
    Ok(Program::from_parts(name, insts, Default::default()))
}

fn label_token(tok: &str) -> String {
    tok.trim().to_string()
}

/// Render a program as assemblable text (labels synthesized for branch
/// targets), such that `assemble(name, &to_asm(&p))` reproduces `p`'s
/// instructions.
pub fn to_asm(program: &Program) -> String {
    use std::collections::BTreeSet;
    let targets: BTreeSet<usize> = program
        .insts()
        .iter()
        .filter_map(|i| i.branch_target())
        .collect();
    let mut out = String::new();
    for (i, inst) in program.insts().iter().enumerate() {
        if targets.contains(&i) {
            out.push_str(&format!("L{i}:\n"));
        }
        let text = match inst {
            Inst::Jmp { target } => format!("jmp L{target}"),
            Inst::Br { cond, target } => format!("{} L{target}", cond.mnemonic()),
            other => other.to_string(),
        };
        out.push_str("    ");
        out.push_str(&text);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn assembles_a_basic_program() {
        let p = assemble("t", "mov r1, 0x1000\nld r2, [r1]\nst [r1 + 8], r2\nhalt\n")
            .expect("assemble");
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.insts()[2],
            Inst::Store {
                src: Reg::R2,
                addr: MemRef::base_disp(Reg::R1, 8)
            }
        );
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let src = "\
            mov r0, 0\n\
            loop: add r0, 1\n\
            cmp r0, 3\n\
            blt loop\n\
            beq done\n\
            nop\n\
            done: halt\n";
        let p = assemble("t", src).expect("assemble");
        assert_eq!(p.insts()[3].branch_target(), Some(1));
        assert_eq!(p.insts()[4].branch_target(), Some(6));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("t", "; header\n\n  nop ; trailing\nhalt\n").expect("assemble");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn full_memref_syntax() {
        let p = assemble("t", "ld r1, [r2 + r3*8 + -0x10]\nhalt\n").expect("assemble");
        assert_eq!(
            p.insts()[0],
            Inst::Load {
                dst: Reg::R1,
                addr: MemRef::full(Reg::R2, Reg::R3, 8, -16)
            }
        );
        let q = assemble("t", "ld r1, [0x2000]\nhalt\n").expect("assemble");
        assert_eq!(
            q.insts()[0],
            Inst::Load {
                dst: Reg::R1,
                addr: MemRef::abs(0x2000)
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("t", "nop\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("t", "jmp nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = assemble("t", "x: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate label"));

        let e = assemble("t", "mov r1\n").unwrap_err();
        assert!(e.message.contains("takes 2 operand"));

        let e = assemble("t", "mov r99, 1\n").unwrap_err();
        assert!(e.message.contains("out of range") || e.message.contains("bad register"));
    }

    #[test]
    fn to_asm_roundtrips_a_builder_program() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        let top = b.here();
        b.alu_imm(AluOp::Add, Reg::R0, 1);
        b.load(Reg::R1, MemRef::base_index(Reg::R0, Reg::R0, 8));
        b.cmp_imm(Reg::R0, 10);
        b.br(Cond::Lt, top);
        b.clflush(MemRef::abs(0x1000));
        b.rdtscp(Reg::R2);
        b.vyield();
        b.lfence();
        b.halt();
        let p = b.build();
        let text = to_asm(&p);
        let q = assemble("t", &text).expect("reassemble");
        assert_eq!(p.insts(), q.insts());
    }

    #[test]
    fn disasm_at_targets_parse() {
        // `jmp @3` absolute-index form, as in builder-level dumps
        let p = assemble("t", "nop\nnop\njmp @0\nhalt\n").expect("assemble");
        assert_eq!(p.insts()[2].branch_target(), Some(0));
    }

    #[test]
    fn empty_source_is_an_error() {
        assert!(assemble("t", "; only comments\n").is_err());
    }
}
