//! # scaguard-repro — umbrella crate for the SCAGuard reproduction
//!
//! A full reproduction of *SCAGuard: Detection and Classification of Cache
//! Side-Channel Attacks via Attack Behavior Modeling and Similarity
//! Comparison* (Wang, Bu, Song — DAC 2023), including every substrate the
//! paper depends on. This crate re-exports the workspace so downstream
//! users (and the runnable examples under `examples/`) need a single
//! dependency:
//!
//! * [`isa`] — the micro-ISA programs are written in;
//! * [`cache`] — the set-associative cache model and hierarchy;
//! * [`cpu`] — the simulated CPU (HPC events, speculation, victims);
//! * [`cfg`](mod@cfg) — control-flow graphs and Algorithm 1's graph primitives;
//! * [`attacks`] — attack PoCs, benign workloads, mutation, obfuscation;
//! * [`core`] — SCAGuard itself: CST-BBS modeling, DTW similarity,
//!   detection and classification;
//! * [`ml`] — the learning-based baseline classifiers;
//! * [`baselines`] — all five detection approaches behind one trait;
//! * [`eval`] — the paper's tables and figures as experiment drivers;
//! * [`serve`] — the resident TCP detection service (`scaguard serve`)
//!   and its client.
//!
//! ```no_run
//! use scaguard_repro::attacks::poc::{self, PocParams};
//! use scaguard_repro::attacks::AttackFamily;
//! use scaguard_repro::core::{Detector, ModelRepository, ModelingConfig};
//!
//! # fn main() -> Result<(), scaguard_repro::core::ModelError> {
//! let config = ModelingConfig::default();
//! let mut repo = ModelRepository::new();
//! for family in AttackFamily::ALL {
//!     let poc = poc::representative(family, &PocParams::default());
//!     repo.add_poc(family, &poc.program, &poc.victim, &config)?;
//! }
//! let detector = Detector::new(repo, Detector::DEFAULT_THRESHOLD).expect("threshold in range");
//! let target = poc::flush_flush_iaik(&PocParams::default());
//! let verdict = detector.classify(&target.program, &target.victim, &config)?;
//! println!("{verdict}");
//! # Ok(())
//! # }
//! ```

pub use sca_attacks as attacks;
pub use sca_baselines as baselines;
pub use sca_cache as cache;
pub use sca_cfg as cfg;
pub use sca_cpu as cpu;
pub use sca_eval as eval;
pub use sca_isa as isa;
pub use sca_ml as ml;
pub use sca_serve as serve;
pub use scaguard as core;
