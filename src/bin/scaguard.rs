//! The SCAGuard command-line tool: model programs, build and persist PoC
//! repositories, classify target programs — the paper's "security check
//! before installing an untrusted program" deployment (Section V) — and
//! run or talk to the resident detection service.
//!
//! ```sh
//! # build a repository from the built-in attack PoCs:
//! scaguard build-repo /tmp/pocs.repo
//!
//! # classify an assembly program against it:
//! scaguard classify target.sasm --repo /tmp/pocs.repo --victim shared:3
//!
//! # or keep the pipeline resident and classify over the wire:
//! scaguard serve /tmp/pocs.repo --addr 127.0.0.1:4815 &
//! scaguard submit target.sasm --addr 127.0.0.1:4815 --victim shared:3
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fs;
use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use sca_attacks::dataset::mutated_family;
use sca_attacks::mutate::MutationConfig;
use sca_attacks::poc::{self, PocParams};
use sca_attacks::{AttackFamily, Sample};
use sca_cpu::Victim;
use sca_serve::protocol::{self, Request};
use sca_serve::{Client, ClientConfig, ServeConfig, WatchOptions};
use sca_telemetry::{Json, Record};
use scaguard::{
    detection_json, explain_similarity, index_sidecar_path, load_index, load_repository,
    save_index, save_repository, Detector, IndexConfig, ModelBuilder, ModelRepository,
    ModelingConfig, RepoIndex,
};

/// Master seed for `build-repo --variants` (the dataset module's paper
/// seed), so bulk-enrolled repositories are reproducible bit-for-bit.
const VARIANT_SEED: u64 = 0x5ca6_0a2d;

fn usage() -> &'static str {
    "usage:
  scaguard build-repo <out-file> [--variants <n>] [--no-index] [--jobs <n>]
          [--model-cache <path>] [--telemetry <out.jsonl>]
      model the built-in PoCs (one per attack type) and save the repository;
      --variants additionally enrolls n deterministic mutated variants per
      attack family (bulk enrollment: 4 families x n entries from one
      command); a metric-index sidecar (<out-file>.idx) is written
      alongside the repository unless --no-index;
      --jobs models them with n worker threads
  scaguard classify <program.sasm> --repo <repo-file>
          [--threshold <0..1>] [--victim none|shared:<secret>|conflict:<secret>]
          [--jobs <n>] [--model-cache <path>] [--no-index] [--json]
          [--timings] [--telemetry <out.jsonl>]
      classify an assembled program against a saved repository;
      the scan uses the repository's index sidecar (<repo-file>.idx) to
      skip entries that provably cannot win — a missing, corrupt, or
      stale sidecar is rebuilt in memory (warning on stderr); --no-index
      forces the plain linear scan; the detection is byte-identical
      either way;
      --jobs scans the repository with n worker threads;
      --json emits the full detection (verdict, family, per-PoC scores,
      threshold) as a single JSON object on stdout; pruned comparisons
      report a `<=` upper bound (\"exact\": false in JSON); --timings
      prints a model/scan/render stage breakdown on stderr (stdout is
      unchanged)
  scaguard model <program.sasm> [--victim ...] [--model-cache <path>]
          [--telemetry <out.jsonl>]
      print the program's CST-BBS attack behavior model
  scaguard explain <program.sasm> --repo <repo-file> [--victim ...]
      show the DTW alignment against the best-matching PoC model
  scaguard serve <repo-file> [--addr <host:port>] [--workers <n>]
          [--shards <n>] [--queue-depth <n>] [--deadline-ms <n>]
          [--threshold <0..1>] [--io-timeout-ms <n>] [--metrics]
          [--max-connections <n>] [--flight-capacity <n>] [--slow-ms <n>]
          [--slow-log <out.jsonl>]
      run the resident detection service on the repository: newline-
      delimited JSON over TCP (classify, classify-batch, model,
      reload-repo, stats, metrics, flight, shutdown), bounded admission
      queue, fixed worker pool; prints `listening on <addr>` once ready
      and runs until a client sends `shutdown`; --addr defaults to
      127.0.0.1:0 (ephemeral port); --shards splits the repository
      across n shard-local scan pools and scatter-gathers every
      classify across them (default 1) — detections are byte-identical
      at any shard count; --io-timeout-ms disconnects a client that
      stalls mid-frame or never drains responses (default 30000; 0
      disables) — idle connections that completed a frame park free of
      charge and are never timed out; --max-connections caps concurrent
      connections (beyond it a peer gets one `overloaded` frame and a
      clean close; 0 or unset = unlimited); --metrics enables the
      telemetry registry so `metrics`
      reports counters/histograms and spans carry trace ids; requests
      slower than --slow-ms dump their summary and span tree to
      --slow-log (JSONL; 0 dumps everything); --flight-capacity sizes
      the always-on ring of per-request summaries (default 256)
  scaguard submit <program.sasm>... --addr <host:port> [--victim ...]
          [--batch <n>] [--threshold <0..1>] [--deadline-ms <n>]
          [--retries <n>] [--json] [--timings]
      classify one or more programs against a running `scaguard serve`;
      --json output is byte-identical to offline `classify --json`, one
      detection object per program in submission order; several
      programs ride `classify-batch` frames of --batch programs each
      (default: all in one frame), pipelined on a single connection;
      --retries re-sends with jittered backoff when the server sheds
      the request as `overloaded` (never after it was admitted);
      --timings prints each request's trace id and per-stage timing
      breakdown on stderr (stdout is unchanged)
  scaguard watch <program.sasm> --addr <host:port> [--victim ...]
          [--increment <n>] [--stream-threshold <0..1>] [--sustain <n>]
          [--deadline-ms <n>] [--json]
      stream the program to a running `scaguard serve` for online
      detection: the server commits --increment instructions at a time
      (default 64) and re-scores the prefix after each one; an ALARM
      line is printed the moment the prefix's best score holds at or
      above --stream-threshold for --sustain consecutive increments
      (defaults: the server's streaming defaults), long before the
      trace ends; the final verdict over the whole trace follows;
      --json instead emits every progress/alarm/done event as one JSON
      object per line on stdout
  scaguard stats <telemetry.jsonl>
  scaguard stats --addr <host:port> [--watch] [--interval-ms <n>]
      summarize a telemetry trace written by --telemetry (per-stage span
      timings, counters, histogram percentiles), or — with --addr —
      fetch a running server's `metrics` snapshot; --watch refreshes
      the live view every --interval-ms (default 1000, minimum 100)
      until killed
  scaguard asm <program.sasm>
      assemble and disassemble a program (syntax check)
  scaguard --help | -h | help
      print this usage
  scaguard --version | -V
      print the version

  --model-cache <path> persists built models content-addressed by
  (program, victim, config), so repeated invocations skip modeling;
  --telemetry <out.jsonl> records pipeline spans/counters during the
  command and writes them as JSON Lines (inspect with `scaguard stats`)"
}

struct Options {
    repo: Option<String>,
    threshold: f64,
    threshold_set: bool,
    victim: Victim,
    victim_spec: String,
    telemetry: Option<String>,
    json: bool,
    jobs: usize,
    model_cache: Option<String>,
    addr: Option<String>,
    workers: usize,
    queue_depth: usize,
    deadline_ms: Option<u64>,
    io_timeout_ms: Option<u64>,
    max_connections: Option<usize>,
    retries: u32,
    timings: bool,
    watch: bool,
    interval_ms: u64,
    shards: usize,
    batch: Option<usize>,
    metrics: bool,
    slow_ms: Option<u64>,
    slow_log: Option<String>,
    flight_capacity: usize,
    variants: usize,
    no_index: bool,
    increment: Option<u64>,
    stream_threshold: Option<f64>,
    sustain: Option<u64>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        repo: None,
        threshold: Detector::DEFAULT_THRESHOLD,
        threshold_set: false,
        victim: Victim::None,
        victim_spec: "none".into(),
        telemetry: None,
        json: false,
        jobs: 1,
        model_cache: None,
        addr: None,
        workers: 4,
        queue_depth: 64,
        deadline_ms: None,
        io_timeout_ms: Some(30_000),
        max_connections: None,
        retries: 0,
        timings: false,
        watch: false,
        interval_ms: 1_000,
        shards: 1,
        batch: None,
        metrics: false,
        slow_ms: None,
        slow_log: None,
        flight_capacity: 256,
        variants: 0,
        no_index: false,
        increment: None,
        stream_threshold: None,
        sustain: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--repo" => opts.repo = Some(it.next().ok_or("--repo needs a path")?.clone()),
            "--threshold" => {
                opts.threshold = it
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse()
                    .map_err(|e| format!("bad threshold: {e}"))?;
                opts.threshold_set = true;
            }
            "--victim" => {
                let spec = it.next().ok_or("--victim needs a spec")?;
                opts.victim = protocol::parse_victim(spec)?;
                opts.victim_spec = spec.clone();
            }
            "--telemetry" => {
                opts.telemetry = Some(it.next().ok_or("--telemetry needs a path")?.clone());
            }
            "--json" => opts.json = true,
            "--model-cache" => {
                opts.model_cache = Some(it.next().ok_or("--model-cache needs a path")?.clone());
            }
            "--jobs" => {
                opts.jobs = it
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse()
                    .map_err(|e| format!("bad job count: {e}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--addr" => opts.addr = Some(it.next().ok_or("--addr needs host:port")?.clone()),
            "--workers" => {
                opts.workers = it
                    .next()
                    .ok_or("--workers needs a count")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--queue-depth" => {
                opts.queue_depth = it
                    .next()
                    .ok_or("--queue-depth needs a count")?
                    .parse()
                    .map_err(|e| format!("bad queue depth: {e}"))?;
                if opts.queue_depth == 0 {
                    return Err("--queue-depth must be at least 1".into());
                }
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad deadline: {e}"))?,
                );
            }
            "--io-timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--io-timeout-ms needs a value (0 disables the timeout)")?
                    .parse()
                    .map_err(|e| format!("bad io timeout: {e}"))?;
                opts.io_timeout_ms = (ms > 0).then_some(ms);
            }
            "--max-connections" => {
                let n: usize = it
                    .next()
                    .ok_or("--max-connections needs a count (0 removes the cap)")?
                    .parse()
                    .map_err(|e| format!("bad connection cap: {e}"))?;
                opts.max_connections = (n > 0).then_some(n);
            }
            "--retries" => {
                opts.retries = it
                    .next()
                    .ok_or("--retries needs a count")?
                    .parse()
                    .map_err(|e| format!("bad retry count: {e}"))?;
            }
            "--timings" => opts.timings = true,
            "--watch" => opts.watch = true,
            "--interval-ms" => {
                opts.interval_ms = it
                    .next()
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad interval: {e}"))?;
                if opts.interval_ms < 100 {
                    return Err("--interval-ms must be at least 100".into());
                }
            }
            "--shards" => {
                opts.shards = it
                    .next()
                    .ok_or("--shards needs a count")?
                    .parse()
                    .map_err(|e| format!("bad shard count: {e}"))?;
                if opts.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--batch" => {
                let n: usize = it
                    .next()
                    .ok_or("--batch needs a size")?
                    .parse()
                    .map_err(|e| format!("bad batch size: {e}"))?;
                if n == 0 {
                    return Err("--batch must be at least 1".into());
                }
                opts.batch = Some(n);
            }
            "--metrics" => opts.metrics = true,
            "--slow-ms" => {
                opts.slow_ms = Some(
                    it.next()
                        .ok_or("--slow-ms needs a value (0 dumps every request)")?
                        .parse()
                        .map_err(|e| format!("bad slow threshold: {e}"))?,
                );
            }
            "--slow-log" => {
                opts.slow_log = Some(it.next().ok_or("--slow-log needs a path")?.clone());
            }
            "--variants" => {
                opts.variants = it
                    .next()
                    .ok_or("--variants needs a count")?
                    .parse()
                    .map_err(|e| format!("bad variant count: {e}"))?;
            }
            "--no-index" => opts.no_index = true,
            "--increment" => {
                let n: u64 = it
                    .next()
                    .ok_or("--increment needs a count")?
                    .parse()
                    .map_err(|e| format!("bad increment: {e}"))?;
                if n == 0 {
                    return Err("--increment must be at least 1".into());
                }
                opts.increment = Some(n);
            }
            "--stream-threshold" => {
                opts.stream_threshold = Some(
                    it.next()
                        .ok_or("--stream-threshold needs a value")?
                        .parse()
                        .map_err(|e| format!("bad stream threshold: {e}"))?,
                );
            }
            "--sustain" => {
                let n: u64 = it
                    .next()
                    .ok_or("--sustain needs a count")?
                    .parse()
                    .map_err(|e| format!("bad sustain count: {e}"))?;
                if n == 0 {
                    return Err("--sustain must be at least 1".into());
                }
                opts.sustain = Some(n);
            }
            "--flight-capacity" => {
                opts.flight_capacity = it
                    .next()
                    .ok_or("--flight-capacity needs a count")?
                    .parse()
                    .map_err(|e| format!("bad flight capacity: {e}"))?;
                if opts.flight_capacity == 0 {
                    return Err("--flight-capacity must be at least 1".into());
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Write the collected telemetry as JSONL, if `--telemetry` was given.
fn finish_telemetry(opts: &Options) -> Result<(), Box<dyn Error>> {
    let Some(path) = &opts.telemetry else {
        return Ok(());
    };
    let snap = sca_telemetry::snapshot();
    let mut buf = Vec::new();
    sca_telemetry::write_jsonl(&snap, &mut buf)?;
    fs::write(path, buf)?;
    eprintln!(
        "telemetry: {} spans, {} counters, {} histograms -> {path}",
        snap.spans.len(),
        snap.counters.len(),
        snap.histograms.len()
    );
    Ok(())
}

fn load_program(path: &str) -> Result<sca_isa::Program, Box<dyn Error>> {
    let source = fs::read_to_string(path)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program");
    Ok(sca_isa::assemble(name, &source)?)
}

/// The command's [`ModelBuilder`]: `--jobs` workers, `--model-cache`
/// persistence when given.
fn make_builder(opts: &Options) -> Result<ModelBuilder, Box<dyn Error>> {
    let mut builder = ModelBuilder::new(&ModelingConfig::default()).with_jobs(opts.jobs);
    if let Some(path) = &opts.model_cache {
        builder = builder.with_disk_cache(path)?;
        if !builder.is_empty() {
            eprintln!("model cache: {} entries from {path}", builder.len());
        }
    }
    Ok(builder)
}

fn cmd_build_repo(out: &str, opts: &Options, builder: &ModelBuilder) -> Result<(), Box<dyn Error>> {
    let params = PocParams::default();
    let mut pending: Vec<(AttackFamily, String, Sample)> = AttackFamily::ALL
        .iter()
        .map(|&f| {
            let sample = poc::representative(f, &params);
            let name = sample.name().to_string();
            (f, name, sample)
        })
        .collect();
    // Bulk enrollment: n deterministic mutated variants per family, named
    // `<abbrev>-var-<i>` so repository contents are stable across runs.
    for family in AttackFamily::ALL {
        for (i, sample) in mutated_family(
            family,
            opts.variants,
            VARIANT_SEED,
            &MutationConfig::default(),
        )
        .into_iter()
        .enumerate()
        {
            pending.push((family, format!("{}-var-{i:04}", family.abbrev()), sample));
        }
    }
    let targets: Vec<_> = pending
        .iter()
        .map(|(_, _, s)| (&s.program, &s.victim))
        .collect();
    let models = builder.build_batch_cst(&targets);
    let mut repo = ModelRepository::new();
    for ((family, name, _), model) in pending.iter().zip(models) {
        repo.add_model(*family, name.as_str(), (*model?).clone());
        if !name.contains("-var-") {
            eprintln!("modeled {family} <- {name}");
        }
    }
    if opts.variants > 0 {
        eprintln!(
            "enrolled {} mutated variants ({} families x {})",
            opts.variants * AttackFamily::ALL.len(),
            AttackFamily::ALL.len(),
            opts.variants
        );
    }
    save_repository(&repo, out)?;
    if opts.no_index {
        eprintln!("wrote {} models to {out} (no index)", repo.len());
    } else {
        let index = RepoIndex::build(&repo, &IndexConfig::default());
        let sidecar = index_sidecar_path(out);
        save_index(&index, &sidecar)?;
        eprintln!(
            "wrote {} models to {out} (index: {})",
            repo.len(),
            sidecar.display()
        );
    }
    Ok(())
}

/// Attach the repository's sidecar index to a detector, rebuilding in
/// memory when the sidecar is missing, corrupt, or stale. The index only
/// prunes — the detection is byte-identical with or without it — so a
/// bad sidecar is never fatal.
fn attach_index(detector: &mut Detector, repo_path: &str) {
    let sidecar = index_sidecar_path(repo_path);
    match load_index(&sidecar) {
        Ok(index) => {
            if detector.set_index(index).is_ok() {
                return;
            }
            eprintln!(
                "index: {} is stale for {repo_path}; rebuilding in memory",
                sidecar.display()
            );
        }
        Err(e) => eprintln!("index: {e}; rebuilding in memory"),
    }
    let index = detector.build_index();
    detector
        .set_index(index)
        .expect("a freshly built index matches its repository");
}

fn cmd_classify(path: &str, opts: &Options, builder: &ModelBuilder) -> Result<(), Box<dyn Error>> {
    let repo_path = opts
        .repo
        .as_deref()
        .ok_or("classify needs --repo (create one with `scaguard build-repo`)")?;
    let repo = load_repository(repo_path)?;
    let mut detector = Detector::new(repo, opts.threshold)?;
    if !opts.no_index {
        attach_index(&mut detector, repo_path);
    }
    let program = load_program(path)?;
    let total_start = Instant::now();
    let mut stages: Vec<(&str, Duration)> = Vec::new();
    // With --timings the model build and the scan are timed separately;
    // the detection is identical either way (`classify_with_builder` is
    // exactly this build + scan pair).
    let detection = if opts.timings {
        let t = Instant::now();
        let model = builder.build_cst(&program, &opts.victim)?;
        stages.push(("model", t.elapsed()));
        let t = Instant::now();
        let detection = detector.classify_model_jobs(&model, opts.jobs);
        stages.push(("scan", t.elapsed()));
        detection
    } else {
        detector.classify_with_builder(&program, &opts.victim, builder, opts.jobs)?
    };
    let render_start = Instant::now();
    if opts.json {
        println!("{}", detection_json(program.name(), &detection));
    } else {
        for entry in &detection.scores {
            // Pruned comparisons only have an upper bound on the score.
            let relation = if entry.exact { "  " } else { "<=" };
            println!(
                "  vs {:<22} ({})  {relation} {:.2}%",
                entry.poc,
                entry.family,
                entry.score * 100.0
            );
        }
        println!("{detection}");
    }
    if opts.timings {
        stages.push(("render", render_start.elapsed()));
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let parts: Vec<String> = stages
            .iter()
            .map(|(name, d)| format!("{name}={:.3}ms", ms(*d)))
            .collect();
        eprintln!(
            "timings: {} total={:.3}ms",
            parts.join(" "),
            ms(total_start.elapsed())
        );
    }
    Ok(())
}

/// Run the resident detection service until a client sends `shutdown`.
fn cmd_serve(repo: &str, opts: &Options) -> Result<(), Box<dyn Error>> {
    let mut config = ServeConfig::new(repo);
    if let Some(addr) = &opts.addr {
        config.addr = addr.clone();
    }
    config.workers = opts.workers;
    config.shards = opts.shards;
    config.queue_depth = opts.queue_depth;
    config.deadline_ms = opts.deadline_ms;
    config.threshold = opts.threshold;
    config.io_timeout_ms = opts.io_timeout_ms;
    config.max_connections = opts.max_connections;
    config.metrics = opts.metrics;
    config.flight_capacity = opts.flight_capacity;
    config.slow_ms = opts.slow_ms;
    config.slow_log = opts.slow_log.as_ref().map(std::path::PathBuf::from);
    let handle = sca_serve::spawn(config)?;
    println!("listening on {}", handle.addr());
    std::io::stdout().flush()?;
    handle.join();
    eprintln!("server stopped");
    Ok(())
}

/// Read a program source and its display name (the file stem).
fn read_program_source(path: &str) -> Result<(String, String), Box<dyn Error>> {
    let source = fs::read_to_string(path)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program")
        .to_string();
    Ok((name, source))
}

/// Classify one or more programs against a running `scaguard serve`
/// instance. A single program without `--batch` keeps the classic
/// one-frame request; anything else rides `classify-batch` frames,
/// pipelined on one connection.
fn cmd_submit(paths: &[String], opts: &Options) -> Result<(), Box<dyn Error>> {
    let addr = opts
        .addr
        .as_deref()
        .ok_or("submit needs --addr <host:port> of a running `scaguard serve`")?;
    if paths.is_empty() {
        return Err("submit needs at least one <program.sasm> path".into());
    }
    if paths.len() > 1 || opts.batch.is_some() {
        return cmd_submit_batch(paths, addr, opts);
    }
    let (name, source) = read_program_source(&paths[0])?;
    let mut client =
        Client::connect_with(addr, ClientConfig::default().with_retries(opts.retries))?;
    let request = Request::Classify {
        name,
        program: source,
        victim: opts.victim_spec.clone(),
        threshold: opts.threshold_set.then_some(opts.threshold),
        deadline_ms: opts.deadline_ms,
        debug_sleep_ms: 0,
        debug_panic: false,
    };
    // The timings flag rides the envelope, not the request, so the
    // detection on the wire stays byte-identical either way.
    let frame = if opts.timings {
        protocol::with_timings_flag(&request)
    } else {
        request.to_json()
    };
    let response = client.request_retry(&frame)?;
    if let Some(kind) = protocol::error_kind(&response) {
        let message = response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("(no message)");
        let trace = protocol::trace_id(&response)
            .map(|t| format!(" [trace {t}]"))
            .unwrap_or_default();
        return Err(format!("server refused the request ({kind}){trace}: {message}").into());
    }
    // Observability goes to stderr: stdout stays byte-identical to
    // offline `classify --json`.
    if opts.timings {
        if let Some(trace) = protocol::trace_id(&response) {
            eprintln!("trace_id: {trace}");
        }
        if let Some(timings) = protocol::timings(&response) {
            print_wire_timings(timings);
        }
    }
    let detection = response
        .get("detection")
        .ok_or("malformed response: no detection")?;
    if opts.json {
        println!("{detection}");
        return Ok(());
    }
    print_remote_detection(detection)
}

/// The batched submit path: chunk the programs into `classify-batch`
/// frames of `--batch` programs each (default: one frame with all of
/// them), keep every frame in flight at once on one pipelined
/// connection, and print the per-program results in submission order.
/// A per-program failure is reported on stderr and turns the exit
/// status, but never hides its siblings' detections.
fn cmd_submit_batch(paths: &[String], addr: &str, opts: &Options) -> Result<(), Box<dyn Error>> {
    let programs = paths
        .iter()
        .map(|path| {
            let (name, source) = read_program_source(path)?;
            Ok(sca_serve::BatchProgram {
                name,
                program: source,
                victim: opts.victim_spec.clone(),
                threshold: opts.threshold_set.then_some(opts.threshold),
            })
        })
        .collect::<Result<Vec<_>, Box<dyn Error>>>()?;
    let chunk = opts.batch.unwrap_or(programs.len()).max(1);
    let frames: Vec<Json> = programs
        .chunks(chunk)
        .map(|c| {
            let request = Request::ClassifyBatch {
                programs: c.to_vec(),
                deadline_ms: opts.deadline_ms,
                debug_sleep_ms: 0,
            };
            if opts.timings {
                protocol::with_timings_flag(&request)
            } else {
                request.to_json()
            }
        })
        .collect();
    let mut client =
        Client::connect_with(addr, ClientConfig::default().with_retries(opts.retries))?;
    let responses = client.pipeline(&frames)?;

    let mut failures = 0usize;
    let mut slots = programs.iter();
    for response in &responses {
        if let Some(kind) = protocol::error_kind(response) {
            let message = response
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("(no message)");
            return Err(format!("server refused a batch frame ({kind}): {message}").into());
        }
        if opts.timings {
            if let Some(trace) = protocol::trace_id(response) {
                eprintln!("trace_id: {trace}");
            }
            if let Some(timings) = protocol::timings(response) {
                print_wire_timings(timings);
            }
        }
        let Some(Json::Arr(results)) = response.get("results") else {
            return Err("malformed response: no results array".into());
        };
        for result in results {
            let program = slots.next().ok_or("server returned too many results")?;
            if let Some(err) = result.get("error") {
                failures += 1;
                let kind = err.get("kind").and_then(Json::as_str).unwrap_or("?");
                let message = err.get("message").and_then(Json::as_str).unwrap_or("?");
                eprintln!("error: {} ({kind}): {message}", program.name);
                continue;
            }
            let detection = result
                .get("detection")
                .ok_or("malformed result: neither detection nor error")?;
            if opts.json {
                println!("{detection}");
            } else {
                println!("{}:", program.name);
                print_remote_detection(detection)?;
            }
        }
    }
    if slots.next().is_some() {
        return Err("server returned too few results".into());
    }
    if failures > 0 {
        return Err(format!("{failures} of {} programs failed", programs.len()).into());
    }
    Ok(())
}

/// Stream a program to a running `scaguard serve` for online detection:
/// open a watch stream, push one increment per frame, and surface the
/// server's `progress`/`alarm`/`done` events as they arrive. An alarm is
/// printed the moment it fires — typically long before the trace ends —
/// and the terminal verdict for the streamed prefix follows.
fn cmd_watch(path: &str, opts: &Options) -> Result<(), Box<dyn Error>> {
    let addr = opts
        .addr
        .as_deref()
        .ok_or("watch needs --addr <host:port> of a running `scaguard serve`")?;
    let (name, source) = read_program_source(path)?;
    let mut client = Client::connect(addr)?;
    let options = WatchOptions {
        increment: opts.increment,
        threshold: opts.stream_threshold,
        sustain: opts.sustain,
        deadline_ms: opts.deadline_ms,
    };
    let ack = client.watch_open(&name, &source, &opts.victim_spec, &options)?;
    if let Some(kind) = protocol::error_kind(&ack) {
        let message = ack
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("(no message)");
        return Err(format!("server refused the watch ({kind}): {message}").into());
    }
    let stream = ack
        .get("stream")
        .and_then(Json::as_u64)
        .ok_or("malformed ack: no stream id")?;
    let num = |k: &str| ack.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    eprintln!(
        "watching {name} as stream {stream} (increment {}, threshold {:.2}, sustain {})",
        num("increment"),
        num("threshold"),
        num("sustain")
    );
    if opts.json {
        println!("{ack}");
    }
    loop {
        let events = client.watch_push(stream, 1)?;
        for event in &events {
            if let Some(kind) = protocol::error_kind(event) {
                let message = event
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("(no message)");
                return Err(format!("watch stream failed ({kind}): {message}").into());
            }
            if opts.json {
                println!("{event}");
            }
            match event.get("event").and_then(Json::as_str) {
                Some("alarm") => {
                    let alarm = event.get("alarm").ok_or("malformed alarm event")?;
                    let get = |k: &str| alarm.get(k).and_then(Json::as_str).unwrap_or("?");
                    let at_step = alarm.get("at_step").and_then(Json::as_u64).unwrap_or(0);
                    let score = alarm.get("score").and_then(Json::as_f64).unwrap_or(0.0);
                    let line = format!(
                        "ALARM {} at step {at_step} (matches {}, score {:.2}%)",
                        get("family"),
                        get("poc"),
                        score * 100.0
                    );
                    if opts.json {
                        eprintln!("{line}");
                    } else {
                        println!("{line}");
                    }
                }
                Some("progress") => {
                    let steps = event.get("steps").and_then(Json::as_u64).unwrap_or(0);
                    let score = event.get("score").and_then(Json::as_f64).unwrap_or(0.0);
                    eprintln!("  step {steps:>8}  best score {:.2}%", score * 100.0);
                }
                Some("done") => {
                    if !opts.json {
                        let steps = event.get("steps").and_then(Json::as_u64).unwrap_or(0);
                        println!("trace complete after {steps} instructions");
                        if let Some(detection) = event.get("detection") {
                            print_remote_detection(detection)?;
                        }
                    }
                    return Ok(());
                }
                _ => {}
            }
        }
    }
}

/// Render a response's `timings` object on stderr, one `stage=ms` pair
/// per wire field, with the span-derived DTW split (present only when
/// the server runs with --metrics) indented below.
fn print_wire_timings(timings: &Json) {
    let Json::Obj(fields) = timings else { return };
    let ms = |v: &Json| v.as_f64().unwrap_or(0.0) / 1e6;
    let parts: Vec<String> = fields
        .iter()
        .filter_map(|(k, v)| {
            k.strip_suffix("_ns")
                .map(|name| format!("{name}={:.3}ms", ms(v)))
        })
        .collect();
    eprintln!("timings: {}", parts.join(" "));
    if let Some(Json::Obj(detail)) = timings.get("detail") {
        let pairs: Vec<String> = detail
            .iter()
            .filter_map(|(k, v)| {
                k.strip_suffix("_ns")
                    .map(|name| format!("{name}={:.3}ms", ms(v)))
            })
            .collect();
        eprintln!("  detail: {}", pairs.join(" "));
    }
}

/// Render a wire detection the way offline `classify` renders its own.
fn print_remote_detection(detection: &Json) -> Result<(), Box<dyn Error>> {
    let scores = match detection.get("scores") {
        Some(Json::Arr(scores)) => scores,
        _ => return Err("malformed response: no scores".into()),
    };
    for entry in scores {
        let get_str = |k: &str| entry.get(k).and_then(Json::as_str).unwrap_or("?");
        let score = entry.get("score").and_then(Json::as_f64).unwrap_or(0.0);
        let exact = entry.get("exact") == Some(&Json::Bool(true));
        let relation = if exact { "  " } else { "<=" };
        println!(
            "  vs {:<22} ({})  {relation} {:.2}%",
            get_str("poc"),
            get_str("family"),
            score * 100.0
        );
    }
    let best = detection
        .get("best_score")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    match detection.get("family").and_then(Json::as_str) {
        Some(family) => println!("ATTACK {family} (score {:.2}%)", best * 100.0),
        None => println!("benign (best score {:.2}%)", best * 100.0),
    }
    Ok(())
}

/// Summarize a `--telemetry` JSONL trace: span timings grouped by name,
/// histogram percentiles, counter totals.
fn cmd_stats(path: &str) -> Result<(), Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    let mut spans: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut gauges: Vec<(String, u64)> = Vec::new();
    let mut hists: Vec<(String, u64, u64, u64, u64)> = Vec::new();
    let mut requests: Vec<sca_telemetry::RequestSummary> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record =
            sca_telemetry::parse_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        match record {
            Record::Span(s) => {
                let entry = spans.entry(s.name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += s.duration_ns;
            }
            Record::Counter { name, value } => counters.push((name, value)),
            Record::Gauge { name, value } => gauges.push((name, value)),
            Record::Histogram {
                name,
                count,
                p50,
                p90,
                p99,
                ..
            } => hists.push((name, count, p50, p90, p99)),
            Record::Request(r) => requests.push(r),
        }
    }
    let ms = |ns: u64| ns as f64 / 1e6;
    println!("spans ({}):", path);
    println!(
        "  {:<32} {:>6} {:>12} {:>12}",
        "name", "count", "total ms", "mean ms"
    );
    for (name, (count, total)) in &spans {
        println!(
            "  {name:<32} {count:>6} {:>12.3} {:>12.3}",
            ms(*total),
            ms(*total) / *count as f64
        );
    }
    if !hists.is_empty() {
        println!("histograms (ns):");
        println!(
            "  {:<32} {:>6} {:>12} {:>12} {:>12}",
            "name", "count", "p50", "p90", "p99"
        );
        for (name, count, p50, p90, p99) in &hists {
            println!("  {name:<32} {count:>6} {p50:>12} {p90:>12} {p99:>12}");
        }
    }
    if !counters.is_empty() {
        println!("counters:");
        for (name, value) in &counters {
            println!("  {name:<32} {value}");
        }
    }
    if !gauges.is_empty() {
        println!("gauges:");
        for (name, value) in &gauges {
            println!("  {name:<32} {value}");
        }
    }
    if !requests.is_empty() {
        println!("requests:");
        for r in &requests {
            println!(
                "  trace={:<8} {:<10} {:<8} {:>10.3} ms  {}",
                r.trace_id,
                r.name,
                r.outcome,
                ms(r.latency_ns),
                r.verdict.as_deref().unwrap_or("-")
            );
        }
    }
    Ok(())
}

/// Fetch and render a running server's `metrics` snapshot; with
/// `--watch`, clear the terminal and refresh every `--interval-ms`.
fn cmd_stats_remote(opts: &Options) -> Result<(), Box<dyn Error>> {
    let addr = opts.addr.as_deref().expect("checked by the caller");
    let mut client = Client::connect(addr)?;
    loop {
        let frame = client.metrics()?;
        if let Some(kind) = protocol::error_kind(&frame) {
            return Err(format!("server refused `metrics` ({kind})").into());
        }
        let mut out = String::new();
        render_metrics(&frame, &mut out);
        if opts.watch {
            // ANSI clear + home, then one coherent screenful.
            print!("\x1b[2J\x1b[H{out}");
            std::io::stdout().flush()?;
        } else {
            print!("{out}");
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms));
    }
}

/// Render one `metrics` frame as the live-view screen.
fn render_metrics(frame: &Json, out: &mut String) {
    use std::fmt::Write as _;
    let Some(m) = frame.get("metrics") else {
        let _ = writeln!(out, "malformed response: no metrics object");
        return;
    };
    let telemetry = m.get("telemetry") == Some(&Json::Bool(true));
    let _ = writeln!(
        out,
        "telemetry: {}",
        if telemetry {
            "on"
        } else {
            "off (gauges only; start the server with --metrics)"
        }
    );
    let section = |out: &mut String, title: &str, obj: Option<&Json>| {
        let Some(Json::Obj(fields)) = obj else { return };
        if fields.is_empty() {
            return;
        }
        let _ = writeln!(out, "{title}:");
        for (name, value) in fields {
            let _ = writeln!(out, "  {name:<32} {}", value.as_f64().unwrap_or(0.0));
        }
    };
    section(out, "gauges", m.get("gauges"));
    section(out, "counters", m.get("counters"));
    if let Some(Json::Obj(hists)) = m.get("histograms") {
        if !hists.is_empty() {
            let _ = writeln!(out, "histograms (ns):");
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
                "name", "count", "p50", "p90", "p99", "max"
            );
            for (name, h) in hists {
                let f = |k: &str| h.get(k).and_then(Json::as_u64).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {name:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
                    f("count"),
                    f("p50"),
                    f("p90"),
                    f("p99"),
                    f("max")
                );
            }
        }
    }
}

fn cmd_model(path: &str, opts: &Options, builder: &ModelBuilder) -> Result<(), Box<dyn Error>> {
    let program = load_program(path)?;
    let outcome = builder.build(&program, &opts.victim)?;
    println!(
        "{}: {} blocks, {} potential, {} attack-relevant",
        program.name(),
        outcome.cfg.len(),
        outcome.potential_bbs.len(),
        outcome.relevant_bbs.len()
    );
    for step in outcome.cst_bbs.steps() {
        let insts: Vec<String> = step.norm_insts.iter().map(|i| i.to_string()).collect();
        println!(
            "  {:#08x} t={:<8} P={:.4}  [{}]",
            step.bb_addr,
            step.first_seen,
            step.cst.change(),
            insts.join("; ")
        );
    }
    Ok(())
}

fn cmd_explain(path: &str, opts: &Options, builder: &ModelBuilder) -> Result<(), Box<dyn Error>> {
    let repo_path = opts
        .repo
        .as_deref()
        .ok_or("explain needs --repo (create one with `scaguard build-repo`)")?;
    let repo = load_repository(repo_path)?;
    let program = load_program(path)?;
    let model = builder.build_cst(&program, &opts.victim)?;
    let best = repo
        .entries()
        .iter()
        .max_by(|a, b| {
            scaguard::similarity_score(&model, &a.model)
                .partial_cmp(&scaguard::similarity_score(&model, &b.model))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .ok_or("the repository is empty")?;
    println!(
        "best match: {} ({})
{}",
        best.name,
        best.family,
        explain_similarity(&model, &best.model)
    );
    Ok(())
}

fn cmd_asm(path: &str) -> Result<(), Box<dyn Error>> {
    let program = load_program(path)?;
    print!("{}", program.disasm());
    let stats = sca_isa::analysis::analyze(&program);
    eprintln!("{stats}");
    if stats.unreachable > 0 {
        eprintln!("warning: {} unreachable instruction(s)", stats.unreachable);
    }
    let uninit = sca_isa::analysis::possibly_uninitialized_reads(&program);
    if !uninit.is_empty() {
        let regs: Vec<String> = uninit.iter().map(|r| r.to_string()).collect();
        eprintln!(
            "warning: registers possibly read before initialization: {}",
            regs.join(", ")
        );
    }
    Ok(())
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.first().is_some_and(|a| a == "help")
    {
        println!("{}", usage());
        return Ok(());
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("scaguard {}", env!("CARGO_PKG_VERSION"));
        return Ok(());
    }
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return Err(usage().into()),
    };
    let path = rest.first().ok_or(usage())?;
    if cmd == "asm" {
        return cmd_asm(path);
    }
    if cmd == "stats" {
        // Two shapes: a JSONL file to summarize, or --addr (optionally
        // --watch) to scrape a running server's `metrics`.
        if path.starts_with("--") {
            let opts = parse_options(rest)?;
            if opts.addr.is_none() {
                return Err("stats needs a <telemetry.jsonl> file or --addr <host:port>".into());
            }
            return cmd_stats_remote(&opts);
        }
        return cmd_stats(path);
    }
    if cmd == "submit" {
        // Every leading non-flag argument is a program path.
        let split = rest
            .iter()
            .position(|a| a.starts_with("--"))
            .unwrap_or(rest.len());
        let opts = parse_options(&rest[split..])?;
        return cmd_submit(&rest[..split], &opts);
    }
    let opts = parse_options(&rest[1..])?;
    if cmd == "serve" {
        return cmd_serve(path, &opts);
    }
    if cmd == "watch" {
        return cmd_watch(path, &opts);
    }
    if opts.telemetry.is_some() {
        sca_telemetry::set_enabled(true);
    }
    let builder = make_builder(&opts)?;
    let result = match cmd {
        "build-repo" => cmd_build_repo(path, &opts, &builder),
        "classify" => cmd_classify(path, &opts, &builder),
        "model" => cmd_model(path, &opts, &builder),
        "explain" => cmd_explain(path, &opts, &builder),
        _ => Err(usage().into()),
    };
    builder.save_disk_cache()?;
    finish_telemetry(&opts)?;
    result
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
